// Reference connected-component labeling and feature-grid fixtures.
#include <gtest/gtest.h>

#include "app/field.h"
#include "app/labeling.h"

namespace wsn::app {
namespace {

FeatureGrid from_art(const std::vector<std::string>& art) {
  FeatureGrid g(art.size());
  for (std::size_t r = 0; r < art.size(); ++r) {
    for (std::size_t c = 0; c < art[r].size(); ++c) {
      g.set({static_cast<std::int32_t>(r), static_cast<std::int32_t>(c)},
            art[r][c] == '#');
    }
  }
  return g;
}

TEST(Labeling, EmptyGridHasNoRegions) {
  const Labeling l = label_regions(empty_grid(8));
  EXPECT_EQ(l.region_count(), 0u);
  for (std::uint32_t v : l.labels) EXPECT_EQ(v, 0u);
}

TEST(Labeling, FullGridIsOneRegion) {
  const Labeling l = label_regions(full_grid(8));
  ASSERT_EQ(l.region_count(), 1u);
  EXPECT_EQ(l.regions[0].area, 64u);
  EXPECT_EQ(l.regions[0].bounds.row_min, 0);
  EXPECT_EQ(l.regions[0].bounds.row_max, 7);
  EXPECT_EQ(l.regions[0].bounds.col_min, 0);
  EXPECT_EQ(l.regions[0].bounds.col_max, 7);
}

TEST(Labeling, SingleCellRegion) {
  FeatureGrid g(4);
  g.set({2, 1}, true);
  const Labeling l = label_regions(g);
  ASSERT_EQ(l.region_count(), 1u);
  EXPECT_EQ(l.regions[0].area, 1u);
  EXPECT_EQ(l.label_at({2, 1}), 1u);
  EXPECT_EQ(l.label_at({2, 2}), 0u);
}

TEST(Labeling, CheckerboardIsAllSingletons) {
  const std::size_t side = 8;
  const Labeling l = label_regions(checkerboard_grid(side));
  EXPECT_EQ(l.region_count(), side * side / 2);
  for (const Region& r : l.regions) EXPECT_EQ(r.area, 1u);
}

TEST(Labeling, DiagonalCellsAreNotConnected) {
  const auto g = from_art({
      "#...",
      ".#..",
      "..#.",
      "...#",
  });
  EXPECT_EQ(label_regions(g).region_count(), 4u);
}

TEST(Labeling, UShapeIsOneRegion) {
  const auto g = from_art({
      "#..#",
      "#..#",
      "#..#",
      "####",
  });
  const Labeling l = label_regions(g);
  ASSERT_EQ(l.region_count(), 1u);
  EXPECT_EQ(l.regions[0].area, 10u);
}

TEST(Labeling, MergePropagatesAcrossStaircase) {
  // The staircase forces the two-pass algorithm to resolve label
  // equivalences discovered late.
  const auto g = from_art({
      "####....",
      "...#....",
      "...#####",
      ".......#",
      "####...#",
      "#..#...#",
      "#..#####",
      "#.......",
  });
  const Labeling l = label_regions(g);
  ASSERT_EQ(l.region_count(), 1u);
  EXPECT_EQ(l.regions[0].area, 26u);
}

TEST(Labeling, TwoRegionsWithDistinctLabels) {
  const auto g = from_art({
      "##..",
      "##..",
      "..##",
      "..##",
  });
  const Labeling l = label_regions(g);
  ASSERT_EQ(l.region_count(), 2u);
  EXPECT_NE(l.label_at({0, 0}), l.label_at({3, 3}));
  EXPECT_EQ(l.regions[0].area, 4u);
  EXPECT_EQ(l.regions[1].area, 4u);
}

TEST(Labeling, LabelsAreDenseAndRowMajorOrdered) {
  const auto g = from_art({
      "#.#.",
      "....",
      "#.#.",
      "....",
  });
  const Labeling l = label_regions(g);
  ASSERT_EQ(l.region_count(), 4u);
  EXPECT_EQ(l.label_at({0, 0}), 1u);
  EXPECT_EQ(l.label_at({0, 2}), 2u);
  EXPECT_EQ(l.label_at({2, 0}), 3u);
  EXPECT_EQ(l.label_at({2, 2}), 4u);
}

TEST(Labeling, RingGridIsOneRegionWithHole) {
  const Labeling l = label_regions(ring_grid(8));
  ASSERT_EQ(l.region_count(), 1u);
  // 4x4 ring within an 8-grid: perimeter of the 2..5 square = 12 cells.
  EXPECT_EQ(l.regions[0].area, 12u);
}

TEST(Labeling, AreasSumToFeatureCount) {
  sim::Rng rng(42);
  for (int trial = 0; trial < 10; ++trial) {
    const FeatureGrid g = random_grid(16, 0.4, rng);
    const Labeling l = label_regions(g);
    std::uint64_t sum = 0;
    for (const Region& r : l.regions) sum += r.area;
    EXPECT_EQ(sum, g.feature_count());
  }
}

TEST(Labeling, EveryFeatureCellIsLabeledAndBackgroundIsNot) {
  sim::Rng rng(7);
  const FeatureGrid g = random_grid(12, 0.5, rng);
  const Labeling l = label_regions(g);
  for (std::int32_t r = 0; r < 12; ++r) {
    for (std::int32_t c = 0; c < 12; ++c) {
      EXPECT_EQ(l.label_at({r, c}) != 0, g.at(r, c));
    }
  }
}

TEST(Labeling, FourConnectivityWithinRegions) {
  // Any two 4-adjacent feature cells must share a label.
  sim::Rng rng(99);
  const FeatureGrid g = random_grid(20, 0.55, rng);
  const Labeling l = label_regions(g);
  for (std::int32_t r = 0; r < 20; ++r) {
    for (std::int32_t c = 0; c < 20; ++c) {
      if (!g.at(r, c)) continue;
      if (c + 1 < 20 && g.at(r, c + 1)) {
        EXPECT_EQ(l.label_at({r, c}), l.label_at({r, c + 1}));
      }
      if (r + 1 < 20 && g.at(r + 1, c)) {
        EXPECT_EQ(l.label_at({r, c}), l.label_at({r + 1, c}));
      }
    }
  }
}

TEST(FeatureGrid, RenderShowsFeatures) {
  FeatureGrid g(2);
  g.set({0, 1}, true);
  EXPECT_EQ(g.render(), ".#\n..\n");
}

TEST(FeatureGrid, OutOfBoundsThrows) {
  FeatureGrid g(4);
  EXPECT_THROW(g.at({4, 0}), std::out_of_range);
  EXPECT_THROW(g.at({0, -1}), std::out_of_range);
}

TEST(FeatureGrid, StripesAndFixtures) {
  const FeatureGrid s = stripes_grid(8, 2);
  EXPECT_TRUE(s.at(0, 0));
  EXPECT_TRUE(s.at(1, 5));
  EXPECT_FALSE(s.at(2, 0));
  EXPECT_EQ(label_regions(s).region_count(), 2u);

  EXPECT_EQ(empty_grid(4).feature_count(), 0u);
  EXPECT_EQ(full_grid(4).feature_count(), 16u);
  EXPECT_EQ(checkerboard_grid(4).feature_count(), 8u);
}

TEST(Fields, ThresholdSampleRespectsThreshold) {
  const ScalarField f = gradient_field(0.0, 1.0);
  const FeatureGrid g = threshold_sample(f, 8, 0.5);
  // Gradient grows southward; the south half should be features.
  EXPECT_FALSE(g.at(0, 0));
  EXPECT_TRUE(g.at(7, 7));
  EXPECT_EQ(label_regions(g).region_count(), 1u);
}

TEST(Fields, PlumeIsZeroUpwind) {
  const ScalarField f = plume_field(0.5, 0.5, 0.0);
  EXPECT_EQ(f(0.1, 0.5), 0.0);  // west of source, wind blows east
  EXPECT_GT(f(0.7, 0.5), 0.0);
}

TEST(Fields, ValueNoiseIsDeterministicInSeed) {
  const ScalarField a = value_noise_field(123);
  const ScalarField b = value_noise_field(123);
  const ScalarField c = value_noise_field(124);
  EXPECT_EQ(a(0.3, 0.7), b(0.3, 0.7));
  EXPECT_NE(a(0.3, 0.7), c(0.3, 0.7));
}

TEST(Fields, HotspotFieldPeaksNearCenters) {
  sim::Rng rng(5);
  const ScalarField f = hotspot_field(3, rng);
  // Field is positive everywhere and bounded by the sum of amplitudes.
  for (double u = 0.05; u < 1.0; u += 0.3) {
    for (double v = 0.05; v < 1.0; v += 0.3) {
      EXPECT_GE(f(u, v), 0.0);
      EXPECT_LE(f(u, v), 3.0);
    }
  }
}

}  // namespace
}  // namespace wsn::app
