// Incremental re-aggregation across sampling rounds.
#include <gtest/gtest.h>

#include <algorithm>

#include "app/field.h"
#include "app/incremental.h"
#include "app/labeling.h"
#include "core/virtual_network.h"

namespace wsn::app {
namespace {

std::vector<std::uint64_t> sorted_areas(const std::vector<RegionInfo>& regions) {
  std::vector<std::uint64_t> areas;
  for (const RegionInfo& r : regions) areas.push_back(r.area);
  std::ranges::sort(areas);
  return areas;
}

std::vector<std::uint64_t> sorted_areas(const Labeling& labeling) {
  std::vector<std::uint64_t> areas;
  for (const Region& r : labeling.regions) areas.push_back(r.area);
  std::ranges::sort(areas);
  return areas;
}

TEST(Incremental, FirstRoundMatchesReference) {
  sim::Rng rng(1);
  const FeatureGrid grid = random_grid(16, 0.45, rng);
  sim::Simulator sim(1);
  core::VirtualNetwork vnet(sim, core::GridTopology(16),
                            core::uniform_cost_model());
  IncrementalAggregator agg(vnet);
  const auto [regions, stats] = agg.round(grid);
  EXPECT_TRUE(stats.full_round);
  EXPECT_EQ(stats.changed_leaves, 256u);
  EXPECT_EQ(stats.messages, 255u);  // same pattern as the one-shot program
  EXPECT_EQ(sorted_areas(regions), sorted_areas(label_regions(grid)));
}

TEST(Incremental, UnchangedRoundIsFree) {
  const FeatureGrid grid = checkerboard_grid(8);
  sim::Simulator sim(2);
  core::VirtualNetwork vnet(sim, core::GridTopology(8),
                            core::uniform_cost_model());
  IncrementalAggregator agg(vnet);
  agg.round(grid);
  const double energy_after_first = vnet.ledger().total();
  const auto [regions, stats] = agg.round(grid);
  EXPECT_FALSE(stats.full_round);
  EXPECT_EQ(stats.changed_leaves, 0u);
  EXPECT_EQ(stats.messages, 0u);
  EXPECT_DOUBLE_EQ(vnet.ledger().total(), energy_after_first);
  EXPECT_EQ(regions.size(), label_regions(grid).region_count());
}

TEST(Incremental, SingleCellChangePropagatesAlongOnePath) {
  FeatureGrid grid = empty_grid(16);
  sim::Simulator sim(3);
  core::VirtualNetwork vnet(sim, core::GridTopology(16),
                            core::uniform_cost_model());
  IncrementalAggregator agg(vnet);
  agg.round(grid);

  grid.set({9, 9}, true);
  const auto [regions, stats] = agg.round(grid);
  EXPECT_EQ(stats.changed_leaves, 1u);
  // One root-to-leaf path: at most maxrecLevel+1 = 5 tree edges, of which
  // self-edges are free.
  EXPECT_LE(stats.messages, 5u);
  EXPECT_GE(stats.messages, 1u);
  ASSERT_EQ(regions.size(), 1u);
  EXPECT_EQ(regions[0].area, 1u);
  EXPECT_EQ(regions[0].bounds.row_min, 9);
}

TEST(Incremental, DeltaRoundsTrackEvolvingField) {
  sim::Simulator sim(4);
  core::VirtualNetwork vnet(sim, core::GridTopology(16),
                            core::uniform_cost_model());
  IncrementalAggregator agg(vnet);
  // A plume drifting east across 6 rounds.
  for (int round = 0; round < 6; ++round) {
    const double u = 0.1 + 0.12 * round;
    const FeatureGrid grid = threshold_sample(
        plume_field(u, 0.5, 0.0, 0.08, 0.8), 16, 0.3);
    const auto [regions, stats] = agg.round(grid);
    const Labeling reference = label_regions(grid);
    EXPECT_EQ(regions.size(), reference.region_count()) << "round " << round;
    EXPECT_EQ(sorted_areas(regions), sorted_areas(reference));
    if (round > 0) {
      EXPECT_FALSE(stats.full_round);
      EXPECT_LT(stats.messages, 255u) << "delta must beat a full round";
    }
  }
}

TEST(Incremental, DeltaMessagesScaleWithChangedPaths) {
  sim::Simulator sim(5);
  core::VirtualNetwork vnet(sim, core::GridTopology(16),
                            core::uniform_cost_model());
  IncrementalAggregator agg(vnet);
  FeatureGrid grid = empty_grid(16);
  agg.round(grid);

  // Flip cells one by one within the same 2x2 block: the shared upper path
  // means the second change costs no more than the first.
  grid.set({0, 0}, true);
  const auto [r1, s1] = agg.round(grid);
  grid.set({0, 1}, true);
  const auto [r2, s2] = agg.round(grid);
  EXPECT_LE(s2.messages, s1.messages + 1);
  ASSERT_EQ(r2.size(), 1u);
  EXPECT_EQ(r2[0].area, 2u);

  // A change in the far corner uses a disjoint path but still only one.
  grid.set({15, 15}, true);
  const auto [r3, s3] = agg.round(grid);
  EXPECT_LE(s3.messages, 5u);
  EXPECT_EQ(r3.size(), 2u);
}

TEST(Incremental, RandomChurnStaysCorrect) {
  sim::Rng rng(6);
  sim::Simulator sim(6);
  core::VirtualNetwork vnet(sim, core::GridTopology(16),
                            core::uniform_cost_model());
  IncrementalAggregator agg(vnet);
  FeatureGrid grid = random_grid(16, 0.5, rng);
  agg.round(grid);
  for (int round = 0; round < 10; ++round) {
    // Flip ~8 random cells.
    for (int k = 0; k < 8; ++k) {
      const core::GridCoord c{static_cast<std::int32_t>(rng.below(16)),
                              static_cast<std::int32_t>(rng.below(16))};
      grid.set(c, !grid.at(c));
    }
    const auto [regions, stats] = agg.round(grid);
    const Labeling reference = label_regions(grid);
    ASSERT_EQ(regions.size(), reference.region_count()) << "round " << round;
    EXPECT_EQ(sorted_areas(regions), sorted_areas(reference));
    EXPECT_LE(stats.changed_leaves, 8u);
  }
}

TEST(Incremental, SingleNodeGrid) {
  sim::Simulator sim(7);
  core::VirtualNetwork vnet(sim, core::GridTopology(1),
                            core::uniform_cost_model());
  IncrementalAggregator agg(vnet);
  FeatureGrid grid(1);
  grid.set({0, 0}, true);
  const auto [regions, stats] = agg.round(grid);
  EXPECT_EQ(regions.size(), 1u);
  EXPECT_EQ(stats.messages, 0u);
}

}  // namespace
}  // namespace wsn::app
