// Robustness layer: ReliableChannel ARQ, fault-injection campaigns,
// deadline-bounded (gracefully degrading) collectives, and automatic
// leader failover. The flagship test runs the canned campaign from
// ISSUE/ROADMAP: a loss burst plus timed crashes (including a level-2
// leader) on a physical 8x8 deployment, and demands that the grid-wide
// sum completes partially with an exact contributor list, that the
// crashed leaders are re-bound automatically, and that the captured
// trace passes the analyzer's reliability invariants.
#include <gtest/gtest.h>

#include <algorithm>
#include <any>
#include <cmath>
#include <cstdint>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "core/primitives.h"
#include "core/virtual_network.h"
#include "emulation/leader_binding.h"
#include "net/reliable_link.h"
#include "obs/analyze/check.h"
#include "obs/analyze/json_reader.h"
#include "obs/export.h"
#include "obs/metrics_registry.h"
#include "obs/sinks.h"
#include "obs/trace.h"
#include "sim/fault_plan.h"

namespace wsn {
namespace {

using core::GridCoord;

// ---- ARQ unit tests on a 3-node line (0)-(1)-(2), range 1.5 -------------

class ArqTest : public ::testing::Test {
 protected:
  explicit ArqTest(net::ReliableConfig cfg = {})
      : sim_(42),
        graph_({{0.0, 0.0}, {1.0, 0.0}, {2.0, 0.0}}, 1.5),
        ledger_(3),
        link_(sim_, graph_, net::RadioModel{1.5, 1.0, 1.0, 1.0},
              net::CpuModel{}, ledger_),
        chan_(link_, cfg) {}

  sim::Simulator sim_;
  net::NetworkGraph graph_;
  net::EnergyLedger ledger_;
  net::LinkLayer link_;
  net::ReliableChannel chan_;
};

TEST_F(ArqTest, DeliversAndAcksOnCleanLink) {
  std::vector<double> got;
  chan_.set_receiver(1, [&](const net::Packet& pkt) {
    got.push_back(std::any_cast<double>(pkt.payload));
  });
  chan_.send(0, 1, 42.0);
  sim_.run();

  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0], 42.0);
  EXPECT_EQ(chan_.counters().get("arq.send"), 1u);
  EXPECT_EQ(chan_.counters().get("arq.delivered"), 1u);
  EXPECT_EQ(chan_.counters().get("arq.ack"), 1u);
  EXPECT_EQ(chan_.counters().get("arq.retransmit"), 0u);
  EXPECT_EQ(chan_.counters().get("arq.give_up"), 0u);
  EXPECT_EQ(chan_.in_flight(), 0u);
}

class ArqLossTest : public ArqTest {
 protected:
  static net::ReliableConfig lossy_cfg() {
    net::ReliableConfig cfg;
    cfg.max_retries = 8;  // enough budget that loss 0.4 rarely exhausts it
    return cfg;
  }
  ArqLossTest() : ArqTest(lossy_cfg()) {}
};

TEST_F(ArqLossTest, EveryFrameDeliveredOnceOrGivenUpUnderLoss) {
  link_.set_loss_probability(0.4);
  std::map<double, int> seen;
  chan_.set_receiver(1, [&](const net::Packet& pkt) {
    ++seen[std::any_cast<double>(pkt.payload)];
  });
  constexpr int kFrames = 20;
  for (int i = 0; i < kFrames; ++i) {
    chan_.send(0, 1, static_cast<double>(i));
  }
  sim_.run();

  // The ARQ contract: each frame reaches the upper layer at most once, and
  // every frame is either delivered or reported as a give-up — never
  // silently lost. (Both can happen to one frame: data delivered but every
  // ack lost exhausts the sender's budget, the classic stop-and-wait
  // ambiguity.)
  for (const auto& [value, count] : seen) EXPECT_EQ(count, 1) << value;
  EXPECT_GE(seen.size() + chan_.counters().get("arq.give_up"),
            static_cast<std::size_t>(kFrames));
  EXPECT_LE(seen.size(), static_cast<std::size_t>(kFrames));
  EXPECT_GT(chan_.counters().get("arq.retransmit"), 0u);
  EXPECT_EQ(chan_.in_flight(), 0u);
}

class ArqGiveUpTest : public ArqTest {
 protected:
  static net::ReliableConfig tight_cfg() {
    net::ReliableConfig cfg;
    cfg.max_retries = 2;
    return cfg;
  }
  ArqGiveUpTest() : ArqTest(tight_cfg()) {}
};

TEST_F(ArqGiveUpTest, GivesUpOnDeadReceiverAfterRetryBudget) {
  link_.set_down(1, true);
  struct GiveUp {
    net::NodeId from, to;
    std::uint64_t seq;
    std::uint32_t attempts;
  };
  std::vector<GiveUp> give_ups;
  chan_.set_on_give_up([&](net::NodeId from, net::NodeId to, std::uint64_t seq,
                           std::uint32_t attempts) {
    give_ups.push_back({from, to, seq, attempts});
  });
  bool delivered = false;
  chan_.set_receiver(1, [&](const net::Packet&) { delivered = true; });
  chan_.send(0, 1, 7.0);
  sim_.run();

  EXPECT_FALSE(delivered);
  ASSERT_EQ(give_ups.size(), 1u);
  EXPECT_EQ(give_ups[0].from, 0u);
  EXPECT_EQ(give_ups[0].to, 1u);
  // 1 initial transmission + max_retries retransmissions.
  EXPECT_EQ(give_ups[0].attempts, 3u);
  EXPECT_EQ(chan_.counters().get("arq.retransmit"), 2u);
  EXPECT_EQ(chan_.counters().get("arq.give_up"), 1u);
  EXPECT_EQ(chan_.in_flight(), 0u);
}

TEST_F(ArqGiveUpTest, DeadSenderGivesUpWithoutRetransmitting) {
  link_.set_down(0, true);
  std::uint32_t attempts_seen = 0;
  chan_.set_on_give_up(
      [&](net::NodeId, net::NodeId, std::uint64_t, std::uint32_t attempts) {
        attempts_seen = attempts;
      });
  chan_.send(0, 1, 7.0);
  sim_.run();

  // A crashed sender cannot transmit; its first timeout resolves to an
  // immediate give-up rather than a futile retry loop.
  EXPECT_EQ(attempts_seen, 1u);
  EXPECT_EQ(chan_.counters().get("arq.retransmit"), 0u);
  EXPECT_EQ(chan_.counters().get("arq.give_up"), 1u);
}

// ---- FaultPlan JSON ------------------------------------------------------

TEST(FaultPlanJson, ParsesEveryKind) {
  const auto plan = sim::FaultPlan::from_json(R"({"events": [
    {"at": 5.0, "kind": "crash",   "node": 12},
    {"at": 6.0, "kind": "crash",   "cell": {"row": 0, "col": 4}},
    {"at": 9.0, "kind": "recover", "node": 12},
    {"at": 3.0, "kind": "loss_burst", "loss": 0.2, "duration": 4.0},
    {"at": 7.0, "kind": "region_outage",
     "row0": 1, "col0": 1, "row1": 2, "col1": 3,
     "duration": 5.0}
  ]})");
  ASSERT_EQ(plan.events.size(), 5u);
  EXPECT_EQ(plan.events[0].kind, sim::FaultKind::kCrash);
  EXPECT_EQ(plan.events[0].node, 12u);
  EXPECT_EQ(plan.events[1].kind, sim::FaultKind::kCrash);
  EXPECT_EQ(plan.events[1].cell.row, 0);
  EXPECT_EQ(plan.events[1].cell.col, 4);
  EXPECT_EQ(plan.events[2].kind, sim::FaultKind::kRecover);
  EXPECT_EQ(plan.events[3].kind, sim::FaultKind::kLossBurst);
  EXPECT_EQ(plan.events[3].loss, 0.2);
  EXPECT_EQ(plan.events[3].duration, 4.0);
  EXPECT_EQ(plan.events[4].kind, sim::FaultKind::kRegionOutage);
  EXPECT_EQ(plan.events[4].row0, 1);
  EXPECT_EQ(plan.events[4].col1, 3);
  EXPECT_EQ(plan.events[4].duration, 5.0);
}

TEST(FaultPlanJson, RejectsUnknownKind) {
  EXPECT_THROW(sim::FaultPlan::from_json(
                   R"({"events": [{"at": 1.0, "kind": "meteor"}]})"),
               std::runtime_error);
}

TEST(FaultPlanJson, RejectsMalformedInput) {
  EXPECT_THROW(sim::FaultPlan::from_json("not json"), std::runtime_error);
  EXPECT_THROW(sim::FaultPlan::from_json(R"({"no_events": true})"),
               std::runtime_error);
}

// Every rejection names the line and event index of the offender, so a
// hand-edited campaign file points back at the broken line, not just "bad
// plan". (No gmock in this repo — match with std::string::find.)
std::string rejection_message(const std::string& text) {
  try {
    (void)sim::FaultPlan::from_json(text);
  } catch (const std::runtime_error& e) {
    return e.what();
  }
  return {};
}

TEST(FaultPlanJson, UnknownKindErrorNamesLineAndEvent) {
  const std::string msg = rejection_message(
      "{\"events\": [\n"
      "  {\"at\": 1.0, \"kind\": \"crash\", \"node\": 3},\n"
      "  {\"at\": 2.0, \"kind\": \"meteor\"}\n"
      "]}");
  EXPECT_NE(msg.find("line 3"), std::string::npos) << msg;
  EXPECT_NE(msg.find("event #2"), std::string::npos) << msg;
  EXPECT_NE(msg.find("meteor"), std::string::npos) << msg;
}

TEST(FaultPlanJson, RejectsNegativeTimesAndDurations) {
  const std::string neg_at = rejection_message(
      R"({"events": [{"at": -1.0, "kind": "crash", "node": 3}]})");
  EXPECT_NE(neg_at.find("negative time"), std::string::npos) << neg_at;
  EXPECT_NE(neg_at.find("event #1"), std::string::npos) << neg_at;

  const std::string neg_dur = rejection_message(
      R"({"events": [
        {"at": 1.0, "kind": "loss_burst", "loss": 0.2, "duration": -4.0}
      ]})");
  EXPECT_NE(neg_dur.find("negative duration"), std::string::npos) << neg_dur;
}

TEST(FaultPlanJson, RejectsCrashWithoutRecoverOverlap) {
  // Node 12 crashes at 5 and again at 8 with no recover between: the second
  // crash can never fire against a live node, so the plan is a typo.
  const std::string msg = rejection_message(
      "{\"events\": [\n"
      "  {\"at\": 5.0, \"kind\": \"crash\", \"node\": 12},\n"
      "  {\"at\": 8.0, \"kind\": \"crash\", \"node\": 12}\n"
      "]}");
  EXPECT_NE(msg.find("overlaps an earlier crash"), std::string::npos) << msg;
  EXPECT_NE(msg.find("node 12"), std::string::npos) << msg;

  // With a recover between the crashes, the same pair is legal.
  EXPECT_NO_THROW(sim::FaultPlan::from_json(R"({"events": [
    {"at": 5.0, "kind": "crash",   "node": 12},
    {"at": 6.0, "kind": "recover", "node": 12},
    {"at": 8.0, "kind": "crash",   "node": 12}
  ]})"));
}

TEST(FaultPlanJson, ParsesSetBudgetForms) {
  const auto plan = sim::FaultPlan::from_json(R"({"events": [
    {"at": 2.0, "kind": "set_budget", "node": 7, "budget": 40.0},
    {"at": 3.0, "kind": "set_budget", "cell": {"row": 1, "col": 2},
     "headroom": 25.0}
  ]})");
  ASSERT_EQ(plan.events.size(), 2u);
  EXPECT_EQ(plan.events[0].kind, sim::FaultKind::kSetBudget);
  EXPECT_EQ(plan.events[0].node, 7u);
  EXPECT_DOUBLE_EQ(plan.events[0].budget, 40.0);
  EXPECT_LT(plan.events[0].headroom, 0.0);  // unset
  EXPECT_EQ(plan.events[1].kind, sim::FaultKind::kSetBudget);
  EXPECT_EQ(plan.events[1].cell.row, 1);
  EXPECT_EQ(plan.events[1].cell.col, 2);
  EXPECT_DOUBLE_EQ(plan.events[1].headroom, 25.0);
  EXPECT_LT(plan.events[1].budget, 0.0);  // unset
}

TEST(FaultPlanJson, SetBudgetRejectionsNameLineAndEvent) {
  // Neither budget nor headroom.
  std::string msg = rejection_message(
      "{\"events\": [\n"
      "  {\"at\": 1.0, \"kind\": \"set_budget\", \"node\": 3}\n"
      "]}");
  EXPECT_NE(msg.find("exactly one of"), std::string::npos) << msg;
  EXPECT_NE(msg.find("event #1"), std::string::npos) << msg;

  // Both budget and headroom.
  msg = rejection_message(
      R"({"events": [{"at": 1.0, "kind": "set_budget", "node": 3,
                      "budget": 5.0, "headroom": 5.0}]})");
  EXPECT_NE(msg.find("exactly one of"), std::string::npos) << msg;

  // No target at all.
  msg = rejection_message(
      R"({"events": [{"at": 1.0, "kind": "set_budget", "budget": 5.0}]})");
  EXPECT_NE(msg.find("\"node\" or \"cell\""), std::string::npos) << msg;

  // Negative values.
  msg = rejection_message(
      R"({"events": [{"at": 1.0, "kind": "set_budget", "node": 3,
                      "budget": -5.0}]})");
  EXPECT_NE(msg.find("negative budget"), std::string::npos) << msg;
  msg = rejection_message(
      "{\"events\": [\n"
      "  {\"at\": 1.0, \"kind\": \"crash\", \"node\": 2},\n"
      "  {\"at\": 1.0, \"kind\": \"set_budget\", \"node\": 3,\n"
      "   \"headroom\": -2.0}\n"
      "]}");
  EXPECT_NE(msg.find("negative headroom"), std::string::npos) << msg;
  EXPECT_NE(msg.find("event #2"), std::string::npos) << msg;
  EXPECT_NE(msg.find("line 3"), std::string::npos) << msg;
}

TEST(FaultPlanJson, SetBudgetRoundTripsAndExtendsDownHorizon) {
  const auto plan = sim::FaultPlan::from_json(R"({"events": [
    {"at": 2.0, "kind": "set_budget", "node": 7, "budget": 40.0},
    {"at": 50.0, "kind": "set_budget", "cell": {"row": 0, "col": 0},
     "headroom": 25.0}
  ]})");
  const std::string serialized = plan.to_json();
  const auto reparsed = sim::FaultPlan::from_json(serialized);
  ASSERT_EQ(reparsed.events.size(), 2u);
  EXPECT_EQ(reparsed.to_json(), serialized);
  EXPECT_DOUBLE_EQ(reparsed.events[0].budget, 40.0);
  EXPECT_DOUBLE_EQ(reparsed.events[1].headroom, 25.0);
  // A set_budget starts a (delayed) death, so the settle horizon must cover
  // its firing time — the drain to zero is the campaign's job to wait out.
  EXPECT_GE(plan.down_horizon(), 50.0);
}

TEST(FaultPlanFire, SetBudgetHeadroomResolvesAtFireTime) {
  sim::Simulator sim(1);
  core::VirtualNetwork vnet(sim, core::GridTopology(4), core::CostModel{});
  // Pre-spend some energy so "headroom" has something to resolve against.
  vnet.ledger().charge(5, net::EnergyUse::kCompute, 12.0);
  sim::FaultInjector injector(sim, vnet);
  injector.arm(sim::FaultPlan::from_json(R"({"events": [
    {"at": 1.0, "kind": "set_budget", "node": 5, "headroom": 25.0},
    {"at": 1.0, "kind": "set_budget", "node": 6, "budget": 40.0}
  ]})"));
  sim.run();
  // headroom => budget == spend-at-fire-time + 25; absolute stays absolute.
  EXPECT_DOUBLE_EQ(vnet.ledger().budget(5), 37.0);
  EXPECT_DOUBLE_EQ(vnet.ledger().remaining(5), 25.0);
  EXPECT_DOUBLE_EQ(vnet.ledger().budget(6), 40.0);
  EXPECT_EQ(injector.counters().get("fault.set_budget"), 2u);
}

TEST(FaultPlanFire, CellTargetedSetBudgetUsesLeaderLookupAtFireTime) {
  bench::PhysicalStack stack(4, 60, 1.3, 7);
  ASSERT_TRUE(stack.healthy());
  sim::FaultInjector injector(stack.sim, *stack.link, stack.mapper.get());
  injector.set_leader_lookup(
      [&](const GridCoord& c) { return stack.overlay->bound_node(c); });
  const net::NodeId leader = stack.overlay->bound_node({1, 1});
  ASSERT_NE(leader, net::kNoNode);
  injector.arm(sim::FaultPlan::from_json(R"({"events": [
    {"at": 2.0, "kind": "set_budget", "cell": {"row": 1, "col": 1},
     "headroom": 30.0}
  ]})"));
  stack.sim.run();
  EXPECT_TRUE(std::isfinite(stack.ledger->budget(leader)));
  EXPECT_GE(stack.ledger->budget(leader), 30.0);
  // Other nodes keep infinite batteries.
  const net::NodeId other = stack.overlay->bound_node({0, 0});
  EXPECT_FALSE(std::isfinite(stack.ledger->budget(other)));
}

TEST(FaultPlanJson, ToJsonRoundTrips) {
  const std::string text = R"({"events": [
    {"at": 5.0, "kind": "crash",   "node": 12},
    {"at": 6.0, "kind": "crash",   "cell": {"row": 0, "col": 4}},
    {"at": 9.0, "kind": "recover", "node": 12},
    {"at": 3.0, "kind": "loss_burst", "loss": 0.2, "duration": 4.0},
    {"at": 7.0, "kind": "region_outage",
     "row0": 1, "col0": 1, "row1": 2, "col1": 3,
     "duration": 5.0}
  ]})";
  const auto plan = sim::FaultPlan::from_json(text);
  const std::string serialized = plan.to_json();
  const auto reparsed = sim::FaultPlan::from_json(serialized);
  ASSERT_EQ(reparsed.events.size(), plan.events.size());
  EXPECT_EQ(reparsed.to_json(), serialized);
  for (std::size_t i = 0; i < plan.events.size(); ++i) {
    EXPECT_EQ(reparsed.events[i].kind, plan.events[i].kind) << i;
    EXPECT_EQ(reparsed.events[i].at, plan.events[i].at) << i;
    EXPECT_EQ(reparsed.events[i].duration, plan.events[i].duration) << i;
  }
}

TEST(FaultPlanJson, DownHorizonCoversOutagesNotLossBursts) {
  const auto plan = sim::FaultPlan::from_json(R"({"events": [
    {"at": 5.0,  "kind": "crash",   "node": 12},
    {"at": 9.0,  "kind": "recover", "node": 12},
    {"at": 2.0,  "kind": "region_outage",
     "row0": 0, "col0": 0, "row1": 0, "col1": 0, "duration": 30.0},
    {"at": 40.0, "kind": "loss_burst", "loss": 0.5, "duration": 100.0}
  ]})");
  // Latest time an outage ends: region at 2+30=32 beats the recover at 9;
  // the loss burst degrades but does not down anything, so 140 is ignored.
  EXPECT_DOUBLE_EQ(plan.down_horizon(), 32.0);
  EXPECT_DOUBLE_EQ(sim::FaultPlan{}.down_horizon(), 0.0);
}

// ---- Adversarial state corruption (plan + fire paths) -------------------

TEST(FaultPlanJson, ParsesStateCorruptionForms) {
  const auto plan = sim::FaultPlan::from_json(R"({"events": [
    {"at": 4.0, "kind": "state_corruption", "node": 9, "target": "epoch"},
    {"at": 6.0, "kind": "state_corruption", "cell": {"row": 2, "col": 3},
     "target": "routes"}
  ]})");
  ASSERT_EQ(plan.events.size(), 2u);
  EXPECT_EQ(plan.events[0].kind, sim::FaultKind::kStateCorruption);
  EXPECT_EQ(plan.events[0].node, 9u);
  EXPECT_EQ(plan.events[0].target, sim::CorruptionTarget::kEpoch);
  EXPECT_EQ(plan.events[1].node, net::kNoNode);
  EXPECT_EQ(plan.events[1].cell.row, 2);
  EXPECT_EQ(plan.events[1].cell.col, 3);
  EXPECT_EQ(plan.events[1].target, sim::CorruptionTarget::kRoutes);
  // Corruption contributes its strike time to the settle horizon.
  EXPECT_DOUBLE_EQ(plan.down_horizon(), 6.0);
}

TEST(FaultPlanJson, StateCorruptionRoundTrips) {
  const auto plan = sim::FaultPlan::from_json(R"({"events": [
    {"at": 1.0, "kind": "state_corruption", "node": 5, "target": "leader"},
    {"at": 2.0, "kind": "state_corruption", "cell": {"row": 1, "col": 1},
     "target": "leases"}
  ]})");
  const std::string serialized = plan.to_json();
  const auto reparsed = sim::FaultPlan::from_json(serialized);
  ASSERT_EQ(reparsed.events.size(), 2u);
  EXPECT_EQ(reparsed.to_json(), serialized);
  EXPECT_EQ(reparsed.events[0].target, sim::CorruptionTarget::kLeader);
  EXPECT_EQ(reparsed.events[1].target, sim::CorruptionTarget::kLeases);
}

TEST(FaultPlanJson, MembershipTargetParsesAndRoundTrips) {
  // The fifth corruption target: cell beliefs / leader rosters. Both the
  // node-targeted form (chaos campaigns resolve victims at plan time) and
  // the cell-targeted form (canned campaigns like campaigns/membership.json
  // resolve the leader at fire time) must survive a JSON round-trip.
  const auto plan = sim::FaultPlan::from_json(R"({"events": [
    {"at": 3.0, "kind": "state_corruption", "node": 7,
     "target": "membership"},
    {"at": 8.0, "kind": "state_corruption", "cell": {"row": 3, "col": 0},
     "target": "membership"}
  ]})");
  ASSERT_EQ(plan.events.size(), 2u);
  EXPECT_EQ(plan.events[0].target, sim::CorruptionTarget::kMembership);
  EXPECT_EQ(plan.events[0].node, 7u);
  EXPECT_EQ(plan.events[1].target, sim::CorruptionTarget::kMembership);
  EXPECT_EQ(plan.events[1].cell.row, 3);
  const std::string serialized = plan.to_json();
  const auto reparsed = sim::FaultPlan::from_json(serialized);
  ASSERT_EQ(reparsed.events.size(), 2u);
  EXPECT_EQ(reparsed.to_json(), serialized);
  EXPECT_EQ(reparsed.events[0].target, sim::CorruptionTarget::kMembership);
  EXPECT_EQ(reparsed.events[1].target, sim::CorruptionTarget::kMembership);
}

TEST(FaultPlanJson, StateCorruptionRejectionsNameLineAndEvent) {
  const std::string unknown = rejection_message(
      "{\"events\": [\n"
      "  {\"at\": 1.0, \"kind\": \"crash\", \"node\": 3},\n"
      "  {\"at\": 2.0, \"kind\": \"state_corruption\", \"node\": 4, "
      "\"target\": \"karma\"}\n"
      "]}");
  EXPECT_NE(unknown.find("line 3"), std::string::npos) << unknown;
  EXPECT_NE(unknown.find("event #2"), std::string::npos) << unknown;
  EXPECT_NE(unknown.find("karma"), std::string::npos) << unknown;

  const std::string no_target = rejection_message(
      R"({"events": [{"at": 1.0, "kind": "state_corruption", "node": 4}]})");
  EXPECT_NE(no_target.find("\"target\""), std::string::npos) << no_target;
  EXPECT_NE(no_target.find("event #1"), std::string::npos) << no_target;

  const std::string no_victim = rejection_message(
      R"({"events": [{"at": 1.0, "kind": "state_corruption",
                      "target": "epoch"}]})");
  EXPECT_NE(no_victim.find("\"node\" or \"cell\""), std::string::npos)
      << no_victim;

  const std::string neg_at = rejection_message(
      R"({"events": [{"at": -2.0, "kind": "state_corruption", "node": 1,
                      "target": "epoch"}]})");
  EXPECT_NE(neg_at.find("negative time"), std::string::npos) << neg_at;
}

TEST(FaultPlanFire, CellTargetedCorruptionResolvesLeaderAtFireTime) {
  bench::PhysicalStack stack(4, 60, 1.3, 7);
  ASSERT_TRUE(stack.healthy());
  sim::FaultInjector injector(stack.sim, *stack.link, stack.mapper.get());
  injector.set_leader_lookup(
      [&](const GridCoord& c) { return stack.overlay->bound_node(c); });
  std::vector<std::pair<net::NodeId, sim::CorruptionTarget>> hits;
  injector.set_corruption_applier(
      [&](net::NodeId n, sim::CorruptionTarget t) {
        hits.emplace_back(n, t);
        return true;
      });
  injector.arm(sim::FaultPlan::from_json(R"({"events": [
    {"at": 2.0, "kind": "state_corruption", "cell": {"row": 1, "col": 1},
     "target": "leases"}
  ]})"));
  stack.sim.run();
  const net::NodeId leader = stack.overlay->bound_node({1, 1});
  ASSERT_NE(leader, net::kNoNode);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].first, leader);
  EXPECT_EQ(hits[0].second, sim::CorruptionTarget::kLeases);
  EXPECT_EQ(injector.counters().get("fault.corrupt"), 1u);
}

TEST(FaultPlanFire, CorruptionOfDownNodeIsANoOp) {
  bench::PhysicalStack stack(4, 60, 1.3, 7);
  ASSERT_TRUE(stack.healthy());
  const net::NodeId victim = stack.overlay->bound_node({2, 2});
  ASSERT_NE(victim, net::kNoNode);
  sim::FaultInjector injector(stack.sim, *stack.link, stack.mapper.get());
  std::size_t applied = 0;
  injector.set_corruption_applier(
      [&](net::NodeId, sim::CorruptionTarget) {
        ++applied;
        return true;
      });
  sim::FaultPlan plan;
  sim::FaultEvent crash;
  crash.at = 1.0;
  crash.kind = sim::FaultKind::kCrash;
  crash.node = victim;
  plan.events.push_back(crash);
  sim::FaultEvent corrupt;
  corrupt.at = 2.0;
  corrupt.kind = sim::FaultKind::kStateCorruption;
  corrupt.node = victim;
  corrupt.target = sim::CorruptionTarget::kEpoch;
  plan.events.push_back(corrupt);
  injector.arm(plan);
  stack.sim.run();
  // A down node has no live soft state to scramble: the strike is counted
  // as skipped and the applier never runs.
  EXPECT_EQ(applied, 0u);
  EXPECT_EQ(injector.counters().get("fault.corrupt_down"), 1u);
  EXPECT_EQ(injector.counters().get("fault.corrupt"), 0u);
}

TEST(FaultPlanFire, CorruptionWithoutApplierCountsUnwired) {
  bench::PhysicalStack stack(4, 60, 1.3, 7);
  ASSERT_TRUE(stack.healthy());
  const net::NodeId victim = stack.overlay->bound_node({0, 1});
  ASSERT_NE(victim, net::kNoNode);
  sim::FaultInjector injector(stack.sim, *stack.link, stack.mapper.get());
  sim::FaultPlan plan;
  sim::FaultEvent corrupt;
  corrupt.at = 1.0;
  corrupt.kind = sim::FaultKind::kStateCorruption;
  corrupt.node = victim;
  corrupt.target = sim::CorruptionTarget::kRoutes;
  plan.events.push_back(corrupt);
  injector.arm(plan);
  stack.sim.run();
  EXPECT_EQ(injector.counters().get("fault.corrupt_unwired"), 1u);
  EXPECT_EQ(injector.counters().get("fault.corrupt"), 0u);
}

// ---- Deadline-bounded collectives on the virtual layer ------------------

std::vector<GridCoord> all_coords(std::size_t side) {
  std::vector<GridCoord> out;
  for (const GridCoord& c : core::GridTopology(side).all_coords()) {
    out.push_back(c);
  }
  return out;
}

TEST(DeadlineCollectives, CompleteOnHealthyFabricMatchesPlainReduce) {
  sim::Simulator sim(1);
  core::VirtualNetwork vnet(sim, core::GridTopology(4), core::CostModel{});
  const auto members = all_coords(4);
  std::vector<double> values;
  for (std::size_t i = 0; i < members.size(); ++i) {
    values.push_back(static_cast<double>(i) + 1.0);
  }
  core::PartialResult result;
  core::group_reduce_deadline(vnet, members, {0, 0}, values,
                              core::ReduceOp::kSum, 1.0, 1e6,
                              [&](const core::PartialResult& r) { result = r; });
  sim.run();

  double sum = 0.0;
  for (double v : values) sum += v;
  EXPECT_TRUE(result.complete());
  EXPECT_FALSE(result.deadline_hit);
  EXPECT_EQ(result.value, sum);
  EXPECT_EQ(result.contributors.size(), members.size());
  EXPECT_TRUE(result.missing().empty());
}

TEST(DeadlineCollectives, ReduceClosesPartialWhenMemberIsDown) {
  sim::Simulator sim(1);
  core::VirtualNetwork vnet(sim, core::GridTopology(4), core::CostModel{});
  const auto members = all_coords(4);
  std::vector<double> values(members.size(), 1.0);
  const GridCoord dead{2, 2};
  vnet.set_down(dead, true);

  core::PartialResult result;
  core::group_reduce_deadline(vnet, members, {0, 0}, values,
                              core::ReduceOp::kSum, 1.0, 50.0,
                              [&](const core::PartialResult& r) { result = r; });
  sim.run();

  EXPECT_TRUE(result.deadline_hit);
  EXPECT_FALSE(result.complete());
  EXPECT_EQ(result.value,
            static_cast<double>(members.size() - 1));
  const auto missing = result.missing();
  ASSERT_EQ(missing.size(), 1u);
  EXPECT_EQ(missing[0], dead);
}

TEST(DeadlineCollectives, SortAndRankDegradeToContributors) {
  sim::Simulator sim(3);
  core::VirtualNetwork vnet(sim, core::GridTopology(4), core::CostModel{});
  const auto members = all_coords(4);
  // Distinct, deliberately unsorted values: i*7 mod 16 is a permutation.
  std::vector<double> values;
  for (std::size_t i = 0; i < members.size(); ++i) {
    values.push_back(static_cast<double>((i * 7) % 16));
  }
  const GridCoord dead{2, 2};  // index 10, holds value 6
  vnet.set_down(dead, true);

  std::vector<double> sorted;
  core::PartialResult sort_result;
  core::group_sort_deadline(
      vnet, members, {0, 0}, values, 1.0, 50.0,
      [&](std::vector<double> s, core::PartialResult r) {
        sorted = std::move(s);
        sort_result = r;
      });
  sim.run();

  ASSERT_EQ(sort_result.contributors.size(), members.size() - 1);
  EXPECT_EQ(sort_result.value,
            static_cast<double>(sort_result.contributors.size()));
  ASSERT_EQ(sorted.size(), members.size() - 1);
  EXPECT_TRUE(std::is_sorted(sorted.begin(), sorted.end()));
  EXPECT_EQ(std::count(sorted.begin(), sorted.end(), 6.0), 0);

  std::vector<std::uint32_t> ranks;
  core::PartialResult rank_result;
  core::group_rank_deadline(
      vnet, members, {0, 0}, values, 1.0, 50.0,
      [&](std::vector<std::uint32_t> r, core::PartialResult pr) {
        ranks = std::move(r);
        rank_result = pr;
      });
  sim.run();

  // Ranks align with contributors and form a permutation of 0..k-1.
  ASSERT_EQ(ranks.size(), rank_result.contributors.size());
  std::vector<std::uint32_t> check(ranks);
  std::sort(check.begin(), check.end());
  for (std::uint32_t i = 0; i < check.size(); ++i) EXPECT_EQ(check[i], i);
}

// Property: under arbitrary crash schedules, contributors is always a
// duplicate-free subset of expected and the value folds exactly the
// contributors' inputs.
TEST(DeadlineCollectives, PartialResultInvariantsUnderRandomCrashes) {
  constexpr std::size_t kSide = 8;
  const auto members = all_coords(kSide);
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    sim::Simulator sim(seed);
    core::VirtualNetwork vnet(sim, core::GridTopology(kSide),
                              core::CostModel{});
    std::vector<double> values;
    for (std::size_t i = 0; i < members.size(); ++i) {
      values.push_back(static_cast<double>(i) + 1.0);
    }

    // Deterministic pseudo-random crash schedule; never the leader (0,0).
    sim::FaultPlan plan;
    const std::size_t crashes = 1 + seed % 5;
    for (std::size_t k = 0; k < crashes; ++k) {
      sim::FaultEvent ev;
      ev.kind = sim::FaultKind::kCrash;
      ev.node = 1 + (seed * 13 + k * 7) % (members.size() - 1);
      ev.at = static_cast<double>((seed + k * 3) % 9);
      plan.events.push_back(ev);
    }
    sim::FaultInjector injector(sim, vnet);
    injector.arm(plan);

    core::PartialResult result;
    core::group_reduce_deadline(
        vnet, members, {0, 0}, values, core::ReduceOp::kSum, 1.0, 40.0,
        [&](const core::PartialResult& r) { result = r; });
    sim.run();

    // contributors ⊆ expected, without duplicates.
    std::set<std::size_t> seen;
    core::GridTopology grid(kSide);
    double sum = 0.0;
    for (const GridCoord& c : result.contributors) {
      const std::size_t idx = grid.index_of(c);
      EXPECT_TRUE(seen.insert(idx).second) << "duplicate contributor";
      EXPECT_NE(std::find(result.expected.begin(), result.expected.end(), c),
                result.expected.end())
          << "contributor outside expected";
      sum += values[idx];
    }
    EXPECT_EQ(result.value, sum) << "seed " << seed;
    EXPECT_EQ(result.expected.size(), members.size());
    if (result.complete()) {
      EXPECT_FALSE(result.deadline_hit);
    }
    EXPECT_EQ(result.missing().size(),
              members.size() - result.contributors.size());
  }
}

// ---- Campaign determinism ------------------------------------------------

std::string run_campaign_capture(std::uint64_t seed) {
  obs::RingBufferSink sink(1u << 20);
  bench::PhysicalStack stack(4, 80, 1.3, seed);
  EXPECT_TRUE(stack.healthy());
  net::ReliableConfig cfg;
  cfg.max_retries = 3;
  stack.enable_arq(cfg);
  emulation::FailoverBinder binder(*stack.arq, *stack.overlay);
  sim::FaultInjector injector(stack.sim, *stack.link, stack.mapper.get());
  injector.set_leader_lookup(
      [&](const GridCoord& c) { return stack.overlay->bound_node(c); });

  // Capture only the campaign (setup already ran); rewind the process-wide
  // flow counter so two captures are comparable byte-for-byte.
  obs::ScopedTrace scope(sink);
  obs::tracer().reset_flows();
  injector.arm(sim::FaultPlan::from_json(R"({"events": [
    {"at": 0.0, "kind": "loss_burst", "loss": 0.1, "duration": 200.0},
    {"at": 1.0, "kind": "crash", "cell": {"row": 1, "col": 1}}
  ]})"));

  const auto members = all_coords(4);
  const std::vector<double> values(members.size(), 1.0);
  for (int round = 0; round < 2; ++round) {
    core::group_reduce_deadline(*stack.overlay, members, {0, 0}, values,
                                core::ReduceOp::kSum, 1.0, 80.0,
                                [](const core::PartialResult&) {});
    stack.sim.run();
  }

  std::ostringstream out;
  obs::write_jsonl(sink.events(), out);
  return out.str();
}

TEST(CampaignDeterminism, IdenticalSeedAndPlanYieldByteIdenticalTraces) {
  const std::string a = run_campaign_capture(11);
  const std::string b = run_campaign_capture(11);
  EXPECT_FALSE(a.empty());
  EXPECT_NE(a.find("fault.crash"), std::string::npos);
  EXPECT_NE(a.find("rel.send"), std::string::npos);
  EXPECT_EQ(a, b);
}

// ---- Flagship: canned campaign on the physical stack --------------------
//
// 8x8 grid, 200 nodes, 5% loss burst, three timed crashes — one of them
// the cell (0,4) leader, which under north-west placement is a level-2
// quadtree leader. Round 1 must close partially at the deadline with the
// crashed cells missing; the ARQ give-ups must drive automatic failover;
// round 2 must recover at least as many contributors; the captured trace
// and metrics must pass the analyzer's invariants.
TEST(FaultCampaign, CannedCampaignDegradesRecoversAndExplains) {
  obs::RingBufferSink sink(1u << 20);
  // Seed 1: fault-free, this deployment routes every cell to the leader, so
  // any degradation below is attributable to the injected faults.
  bench::PhysicalStack stack(8, 200, 1.3, 1);
  ASSERT_TRUE(stack.healthy());
  net::ReliableConfig cfg;
  cfg.max_retries = 3;
  stack.enable_arq(cfg);
  emulation::FailoverBinder binder(*stack.arq, *stack.overlay);
  sim::FaultInjector injector(stack.sim, *stack.link, stack.mapper.get());
  injector.set_leader_lookup(
      [&](const GridCoord& c) { return stack.overlay->bound_node(c); });

  obs::MetricsRegistry registry;
  stack.register_metrics(registry);
  registry.add_counters("fault.counters", &injector.counters());
  registry.add_counters("failover.counters", &binder.counters());

  const std::vector<GridCoord> crashed_cells = {{0, 4}, {2, 3}, {5, 6}};
  std::vector<net::NodeId> old_leaders;
  for (const GridCoord& c : crashed_cells) {
    old_leaders.push_back(stack.overlay->bound_node(c));
  }

  obs::ScopedTrace scope(sink);
  injector.arm(sim::FaultPlan::from_json(R"({"events": [
    {"at": 0.0, "kind": "loss_burst", "loss": 0.05, "duration": 2000.0},
    {"at": 0.0, "kind": "crash", "cell": {"row": 0, "col": 4}},
    {"at": 0.0, "kind": "crash", "cell": {"row": 2, "col": 3}},
    {"at": 0.0, "kind": "crash", "cell": {"row": 5, "col": 6}}
  ]})"));
  // Apply the t=0 faults before the first round begins.
  stack.sim.run_until(stack.sim.now() + 0.5);
  EXPECT_EQ(injector.counters().get("fault.crash"), 3u);

  const auto members = all_coords(8);
  const std::vector<double> values(members.size(), 1.0);

  core::PartialResult round1;
  core::group_reduce_deadline(*stack.overlay, members, {0, 0}, values,
                              core::ReduceOp::kSum, 1.0, 200.0,
                              [&](const core::PartialResult& r) { round1 = r; });
  stack.sim.run();

  // Round 1: partial, with each crashed cell's contribution missing and the
  // folded value exactly the contributor count.
  EXPECT_TRUE(round1.deadline_hit);
  EXPECT_FALSE(round1.complete());
  EXPECT_EQ(round1.value, static_cast<double>(round1.contributors.size()));
  const auto missing1 = round1.missing();
  for (const GridCoord& c : crashed_cells) {
    EXPECT_NE(std::find(missing1.begin(), missing1.end(), c), missing1.end())
        << "crashed cell (" << c.row << "," << c.col << ") contributed";
  }

  // The give-up liveness signal re-bound every crashed cell to a live
  // member — the same winner the central oracle picks among survivors.
  EXPECT_EQ(binder.failovers(), 3u);
  const auto oracle = emulation::oracle_leaders(
      *stack.mapper, emulation::BindingMetric::kDistanceToCenter,
      *stack.ledger, stack.link.get());
  for (std::size_t i = 0; i < crashed_cells.size(); ++i) {
    const GridCoord& c = crashed_cells[i];
    const net::NodeId now_bound = stack.overlay->bound_node(c);
    EXPECT_NE(now_bound, old_leaders[i]);
    EXPECT_FALSE(stack.link->is_down(now_bound));
    const std::size_t idx = static_cast<std::size_t>(c.row) * 8 +
                            static_cast<std::size_t>(c.col);
    EXPECT_EQ(now_bound, oracle[idx]);
  }

  // Round 2 on the re-bound overlay recovers at least as much of the grid.
  core::PartialResult round2;
  core::group_reduce_deadline(*stack.overlay, members, {0, 0}, values,
                              core::ReduceOp::kSum, 1.0, 200.0,
                              [&](const core::PartialResult& r) { round2 = r; });
  stack.sim.run();
  EXPECT_GE(round2.contributors.size(), round1.contributors.size());
  EXPECT_EQ(round2.value, static_cast<double>(round2.contributors.size()));

  // The captured trace must satisfy both the structural flow/collective
  // invariants and the reliability invariants (rel.* pairing, no delivery
  // into a crash window, give-up counter consistency).
  const std::vector<obs::TraceEvent> events = sink.events();
  const auto structural = obs::analyze::check_trace(events);
  EXPECT_TRUE(structural.ok()) << structural.issues.front();
  const obs::analyze::JsonValue snapshot =
      obs::analyze::parse_json(registry.to_json());
  const auto reliability = obs::analyze::check_reliability(events, &snapshot);
  EXPECT_TRUE(reliability.ok()) << reliability.issues.front();
  EXPECT_GT(stack.arq->counters().get("arq.give_up"), 0u);
}

}  // namespace
}  // namespace wsn
