// Chaos-soak harness (sim/chaos_soak.h): the full fixed-seed soak must come
// back with zero findings and zero split-brains, a single campaign must
// replay byte-identically (trace JSONL and plan JSON both), and every
// generated FaultPlan must round-trip through the JSON loader it claims to
// be replayable with.
#include <gtest/gtest.h>

#include <cstdio>

#include "sim/chaos_soak.h"
#include "sim/fault_plan.h"

namespace wsn {
namespace {

TEST(ChaosSoak, FullSoakZeroFindings) {
  sim::ChaosSoakConfig cfg;  // 25 campaigns, fixed seed 20260805
  ASSERT_GE(cfg.campaigns, 25u);
  const sim::ChaosSoak soak(cfg);
  const sim::ChaosSoakSummary summary = soak.run();
  EXPECT_EQ(summary.campaigns, cfg.campaigns);
  for (const sim::ChaosCampaignResult& res : summary.results) {
    EXPECT_EQ(res.split_brains, 0u)
        << "campaign " << res.index << " (seed " << res.seed << ")";
    for (const std::string& f : res.findings) {
      ADD_FAILURE() << "campaign " << res.index << " (seed " << res.seed
                    << "): " << f << "\nplan: " << res.plan_json;
    }
  }
  EXPECT_EQ(summary.failed, 0u);
  EXPECT_TRUE(summary.ok());
}

TEST(ChaosSoak, SingleCampaignReplaysByteIdentically) {
  const sim::ChaosSoak soak{sim::ChaosSoakConfig{}};
  const auto first = soak.run_campaign(3, /*keep_trace=*/true);
  const auto second = soak.run_campaign(3, /*keep_trace=*/true);
  ASSERT_FALSE(first.trace_jsonl.empty());
  EXPECT_EQ(first.seed, second.seed);
  EXPECT_EQ(first.plan_json, second.plan_json);
  EXPECT_EQ(first.events, second.events);
  EXPECT_EQ(first.trace_jsonl, second.trace_jsonl)
      << "same seed + same plan must produce a byte-identical trace";
}

TEST(ChaosSoak, GeneratedPlansRoundTripThroughJson) {
  const sim::ChaosSoak soak{sim::ChaosSoakConfig{}};
  for (std::size_t k = 0; k < 5; ++k) {
    const auto res = soak.run_campaign(k, /*keep_trace=*/false);
    ASSERT_FALSE(res.plan_json.empty());
    sim::FaultPlan parsed;
    ASSERT_NO_THROW(parsed = sim::FaultPlan::from_json(res.plan_json))
        << "campaign " << k << " plan: " << res.plan_json;
    // Re-serializing the parsed plan reproduces the artifact exactly, so a
    // saved campaign_<k>.plan.json replays the run bit-for-bit.
    EXPECT_EQ(parsed.to_json(), res.plan_json);
  }
}

TEST(ChaosSoak, DepletionSoakZeroFindings) {
  // Energy-exhaustion mode: each campaign gives a few bound leaders finite
  // batteries on top of the generated fault plan. The oracle additionally
  // demands a clean check_depletion pass, a planned handoff strictly before
  // every budgeted leader's battery death, and zero split-brains.
  sim::ChaosSoakConfig cfg;
  cfg.depletion = true;
  cfg.campaigns = 12;  // acceptance floor is >= 10 depletion campaigns
  const sim::ChaosSoak soak(cfg);
  const sim::ChaosSoakSummary summary = soak.run();
  EXPECT_EQ(summary.campaigns, cfg.campaigns);
  std::size_t depletions = 0;
  std::size_t planned = 0;
  for (const sim::ChaosCampaignResult& res : summary.results) {
    depletions += res.depletions;
    planned += res.planned_handoffs;
    EXPECT_EQ(res.split_brains, 0u)
        << "campaign " << res.index << " (seed " << res.seed << ")";
    for (const std::string& f : res.findings) {
      ADD_FAILURE() << "campaign " << res.index << " (seed " << res.seed
                    << "): " << f << "\nplan: " << res.plan_json;
    }
  }
  EXPECT_EQ(summary.failed, 0u);
  // The mode must actually exercise the fault model: batteries ran out and
  // the retiring leaders handed off first.
  EXPECT_GT(depletions, 0u);
  EXPECT_GT(planned, 0u);
}

TEST(ChaosSoak, DepletionCampaignReplaysByteIdentically) {
  sim::ChaosSoakConfig cfg;
  cfg.depletion = true;
  const sim::ChaosSoak soak(cfg);
  const auto first = soak.run_campaign(1, /*keep_trace=*/true);
  const auto second = soak.run_campaign(1, /*keep_trace=*/true);
  ASSERT_FALSE(first.trace_jsonl.empty());
  EXPECT_EQ(first.plan_json, second.plan_json);
  EXPECT_EQ(first.depletions, second.depletions);
  EXPECT_EQ(first.trace_jsonl, second.trace_jsonl)
      << "battery exhaustion must stay inside the deterministic event loop";
}

TEST(ChaosSoak, DetectionLatencyWithinBound) {
  const sim::ChaosSoak soak{sim::ChaosSoakConfig{}};
  const double bound = soak.detection_bound();
  std::size_t crashes = 0;
  for (std::size_t k = 0; k < 8; ++k) {
    const auto res = soak.run_campaign(k, /*keep_trace=*/false);
    crashes += res.leader_crashes;
    if (res.leader_crashes > 0) {
      EXPECT_GE(res.max_detection_latency, 0.0);
      EXPECT_LE(res.max_detection_latency, bound)
          << "campaign " << k << " (seed " << res.seed << ")";
    }
  }
  EXPECT_GT(crashes, 0u)
      << "the first 8 campaigns should include at least one leader crash";
}

// ---- Adversarial state-corruption soak ----------------------------------

TEST(ChaosSoak, CorruptionSoakReconvergesAcrossTopologies) {
  // >= 12 corruption campaigns spanning grid, ring, and mesh: every plan
  // carries only state_corruption strikes, the detector runs with audits
  // on, and the oracle (check_stabilization + end-state agreement + zero
  // split-brain + the analytic re-convergence bound) must hold on all of
  // them.
  const net::TopologyKind topologies[] = {net::TopologyKind::kGrid,
                                          net::TopologyKind::kRing,
                                          net::TopologyKind::kMesh};
  std::size_t corruptions = 0;
  for (const net::TopologyKind topo : topologies) {
    sim::ChaosSoakConfig cfg;
    cfg.corruption = true;
    cfg.topology = topo;
    cfg.campaigns = 4;
    const sim::ChaosSoak soak(cfg);
    const double bound = 2.5 * cfg.detector.lease_duration +
                         1.5 * cfg.detector.election_timeout +
                         cfg.corruption_audit_period + 10.0;
    for (std::size_t k = 0; k < cfg.campaigns; ++k) {
      const auto res = soak.run_campaign(k, /*keep_trace=*/false);
      EXPECT_EQ(res.topology, net::to_string(topo));
      EXPECT_GT(res.corruptions, 0u);
      corruptions += res.corruptions;
      EXPECT_EQ(res.split_brains, 0u);
      EXPECT_LE(res.max_reconverge_latency, bound)
          << res.topology << " campaign " << k << " (seed " << res.seed
          << ")";
      for (const std::string& f : res.findings) {
        ADD_FAILURE() << res.topology << " campaign " << k << " (seed "
                      << res.seed << "): " << f << "\nplan: " << res.plan_json;
      }
    }
  }
  EXPECT_GE(corruptions, 12u);
}

TEST(ChaosSoak, CorruptionCampaignReplaysByteIdentically) {
  sim::ChaosSoakConfig cfg;
  cfg.corruption = true;
  cfg.topology = net::TopologyKind::kRing;
  const sim::ChaosSoak soak(cfg);
  const auto first = soak.run_campaign(4, /*keep_trace=*/true);
  const auto second = soak.run_campaign(4, /*keep_trace=*/true);
  ASSERT_FALSE(first.trace_jsonl.empty());
  EXPECT_EQ(first.plan_json, second.plan_json);
  EXPECT_EQ(first.corruptions, second.corruptions);
  EXPECT_EQ(first.max_reconverge_latency, second.max_reconverge_latency);
  EXPECT_EQ(first.trace_jsonl, second.trace_jsonl)
      << "corruption campaigns must replay byte-for-byte";
}

TEST(ChaosSoak, CorruptionPlansCarryOnlyCorruptionEvents) {
  sim::ChaosSoakConfig cfg;
  cfg.corruption = true;
  cfg.topology = net::TopologyKind::kMesh;
  const sim::ChaosSoak soak(cfg);
  for (std::size_t k = 0; k < 3; ++k) {
    const auto res = soak.run_campaign(k, /*keep_trace=*/false);
    const sim::FaultPlan plan = sim::FaultPlan::from_json(res.plan_json);
    ASSERT_FALSE(plan.events.empty());
    for (const sim::FaultEvent& ev : plan.events) {
      EXPECT_EQ(ev.kind, sim::FaultKind::kStateCorruption);
      EXPECT_GE(ev.at, 0.0);
    }
    EXPECT_EQ(plan.events.size(), res.corruptions);
  }
}

// ---- Self-healing membership soak ---------------------------------------

TEST(ChaosSoak, MembershipSoakHealsAcrossTopologies) {
  // >= 12 membership campaigns spanning grid, ring, and mesh: each plan
  // mixes membership-target corruption strikes (defected beliefs,
  // scrambled rosters) with whole-cell vacancy scenarios. The oracle
  // additionally demands check_membership (zero dark cells, beliefs and
  // rosters inverse-consistent at settle), one adoption per planned
  // vacancy, a proxy re-bind of every vacated cell, and both latencies
  // inside the extended stabilization bound.
  const net::TopologyKind topologies[] = {net::TopologyKind::kGrid,
                                          net::TopologyKind::kRing,
                                          net::TopologyKind::kMesh};
  std::size_t adoptions = 0;
  std::size_t binds = 0;
  for (const net::TopologyKind topo : topologies) {
    sim::ChaosSoakConfig cfg;
    cfg.membership = true;
    cfg.topology = topo;
    cfg.campaigns = 4;
    const sim::ChaosSoak soak(cfg);
    const double bound = 2.5 * cfg.detector.lease_duration +
                         1.5 * cfg.detector.election_timeout +
                         2.0 * cfg.membership_audit_period + 10.0;
    for (std::size_t k = 0; k < cfg.campaigns; ++k) {
      const auto res = soak.run_campaign(k, /*keep_trace=*/false);
      EXPECT_EQ(res.topology, net::to_string(topo));
      EXPECT_GT(res.corruptions, 0u);
      EXPECT_EQ(res.split_brains, 0u);
      adoptions += res.adoptions;
      binds += res.adopt_binds;
      EXPECT_LE(res.max_adoption_latency, bound)
          << res.topology << " campaign " << k << " (seed " << res.seed
          << ")";
      EXPECT_LE(res.max_reconverge_latency, bound)
          << res.topology << " campaign " << k << " (seed " << res.seed
          << ")";
      for (const std::string& f : res.findings) {
        ADD_FAILURE() << res.topology << " campaign " << k << " (seed "
                      << res.seed << "): " << f << "\nplan: " << res.plan_json;
      }
    }
  }
  // The mode must actually exercise the fault model: orphans were adopted
  // and every vacated cell was re-bound to a proxy leader.
  EXPECT_GE(adoptions, 10u);
  EXPECT_GE(binds, adoptions);
}

TEST(ChaosSoak, MembershipCampaignReplaysByteIdentically) {
  sim::ChaosSoakConfig cfg;
  cfg.membership = true;
  cfg.topology = net::TopologyKind::kMesh;
  const sim::ChaosSoak soak(cfg);
  const auto first = soak.run_campaign(2, /*keep_trace=*/true);
  const auto second = soak.run_campaign(2, /*keep_trace=*/true);
  ASSERT_FALSE(first.trace_jsonl.empty());
  EXPECT_EQ(first.plan_json, second.plan_json);
  EXPECT_EQ(first.corruptions, second.corruptions);
  EXPECT_EQ(first.adoptions, second.adoptions);
  EXPECT_EQ(first.adopt_binds, second.adopt_binds);
  EXPECT_EQ(first.max_adoption_latency, second.max_adoption_latency);
  EXPECT_EQ(first.trace_jsonl, second.trace_jsonl)
      << "membership campaigns must replay byte-for-byte";
}

TEST(ChaosSoak, MembershipPlansMixStrikesAndVacancies) {
  sim::ChaosSoakConfig cfg;
  cfg.membership = true;
  const sim::ChaosSoak soak(cfg);
  for (std::size_t k = 0; k < 3; ++k) {
    const auto res = soak.run_campaign(k, /*keep_trace=*/false);
    const sim::FaultPlan plan = sim::FaultPlan::from_json(res.plan_json);
    ASSERT_FALSE(plan.events.empty());
    std::size_t strikes = 0;
    std::size_t crashes = 0;
    for (const sim::FaultEvent& ev : plan.events) {
      if (ev.kind == sim::FaultKind::kStateCorruption) {
        EXPECT_EQ(ev.target, sim::CorruptionTarget::kMembership);
        ++strikes;
      } else {
        // Vacancy scenarios are expressed as simultaneous member crashes.
        EXPECT_EQ(ev.kind, sim::FaultKind::kCrash);
        ++crashes;
      }
    }
    EXPECT_EQ(strikes, res.corruptions);
    EXPECT_GT(crashes, 0u) << "campaign " << k
                           << " staged no vacancy: " << res.plan_json;
  }
}

}  // namespace
}  // namespace wsn
