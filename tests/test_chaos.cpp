// Chaos-soak harness (sim/chaos_soak.h): the full fixed-seed soak must come
// back with zero findings and zero split-brains, a single campaign must
// replay byte-identically (trace JSONL and plan JSON both), and every
// generated FaultPlan must round-trip through the JSON loader it claims to
// be replayable with.
#include <gtest/gtest.h>

#include <cstdio>

#include "sim/chaos_soak.h"
#include "sim/fault_plan.h"

namespace wsn {
namespace {

TEST(ChaosSoak, FullSoakZeroFindings) {
  sim::ChaosSoakConfig cfg;  // 25 campaigns, fixed seed 20260805
  ASSERT_GE(cfg.campaigns, 25u);
  const sim::ChaosSoak soak(cfg);
  const sim::ChaosSoakSummary summary = soak.run();
  EXPECT_EQ(summary.campaigns, cfg.campaigns);
  for (const sim::ChaosCampaignResult& res : summary.results) {
    EXPECT_EQ(res.split_brains, 0u)
        << "campaign " << res.index << " (seed " << res.seed << ")";
    for (const std::string& f : res.findings) {
      ADD_FAILURE() << "campaign " << res.index << " (seed " << res.seed
                    << "): " << f << "\nplan: " << res.plan_json;
    }
  }
  EXPECT_EQ(summary.failed, 0u);
  EXPECT_TRUE(summary.ok());
}

TEST(ChaosSoak, SingleCampaignReplaysByteIdentically) {
  const sim::ChaosSoak soak{sim::ChaosSoakConfig{}};
  const auto first = soak.run_campaign(3, /*keep_trace=*/true);
  const auto second = soak.run_campaign(3, /*keep_trace=*/true);
  ASSERT_FALSE(first.trace_jsonl.empty());
  EXPECT_EQ(first.seed, second.seed);
  EXPECT_EQ(first.plan_json, second.plan_json);
  EXPECT_EQ(first.events, second.events);
  EXPECT_EQ(first.trace_jsonl, second.trace_jsonl)
      << "same seed + same plan must produce a byte-identical trace";
}

TEST(ChaosSoak, GeneratedPlansRoundTripThroughJson) {
  const sim::ChaosSoak soak{sim::ChaosSoakConfig{}};
  for (std::size_t k = 0; k < 5; ++k) {
    const auto res = soak.run_campaign(k, /*keep_trace=*/false);
    ASSERT_FALSE(res.plan_json.empty());
    sim::FaultPlan parsed;
    ASSERT_NO_THROW(parsed = sim::FaultPlan::from_json(res.plan_json))
        << "campaign " << k << " plan: " << res.plan_json;
    // Re-serializing the parsed plan reproduces the artifact exactly, so a
    // saved campaign_<k>.plan.json replays the run bit-for-bit.
    EXPECT_EQ(parsed.to_json(), res.plan_json);
  }
}

TEST(ChaosSoak, DepletionSoakZeroFindings) {
  // Energy-exhaustion mode: each campaign gives a few bound leaders finite
  // batteries on top of the generated fault plan. The oracle additionally
  // demands a clean check_depletion pass, a planned handoff strictly before
  // every budgeted leader's battery death, and zero split-brains.
  sim::ChaosSoakConfig cfg;
  cfg.depletion = true;
  cfg.campaigns = 12;  // acceptance floor is >= 10 depletion campaigns
  const sim::ChaosSoak soak(cfg);
  const sim::ChaosSoakSummary summary = soak.run();
  EXPECT_EQ(summary.campaigns, cfg.campaigns);
  std::size_t depletions = 0;
  std::size_t planned = 0;
  for (const sim::ChaosCampaignResult& res : summary.results) {
    depletions += res.depletions;
    planned += res.planned_handoffs;
    EXPECT_EQ(res.split_brains, 0u)
        << "campaign " << res.index << " (seed " << res.seed << ")";
    for (const std::string& f : res.findings) {
      ADD_FAILURE() << "campaign " << res.index << " (seed " << res.seed
                    << "): " << f << "\nplan: " << res.plan_json;
    }
  }
  EXPECT_EQ(summary.failed, 0u);
  // The mode must actually exercise the fault model: batteries ran out and
  // the retiring leaders handed off first.
  EXPECT_GT(depletions, 0u);
  EXPECT_GT(planned, 0u);
}

TEST(ChaosSoak, DepletionCampaignReplaysByteIdentically) {
  sim::ChaosSoakConfig cfg;
  cfg.depletion = true;
  const sim::ChaosSoak soak(cfg);
  const auto first = soak.run_campaign(1, /*keep_trace=*/true);
  const auto second = soak.run_campaign(1, /*keep_trace=*/true);
  ASSERT_FALSE(first.trace_jsonl.empty());
  EXPECT_EQ(first.plan_json, second.plan_json);
  EXPECT_EQ(first.depletions, second.depletions);
  EXPECT_EQ(first.trace_jsonl, second.trace_jsonl)
      << "battery exhaustion must stay inside the deterministic event loop";
}

TEST(ChaosSoak, DetectionLatencyWithinBound) {
  const sim::ChaosSoak soak{sim::ChaosSoakConfig{}};
  const double bound = soak.detection_bound();
  std::size_t crashes = 0;
  for (std::size_t k = 0; k < 8; ++k) {
    const auto res = soak.run_campaign(k, /*keep_trace=*/false);
    crashes += res.leader_crashes;
    if (res.leader_crashes > 0) {
      EXPECT_GE(res.max_detection_latency, 0.0);
      EXPECT_LE(res.max_detection_latency, bound)
          << "campaign " << k << " (seed " << res.seed << ")";
    }
  }
  EXPECT_GT(crashes, 0u)
      << "the first 8 campaigns should include at least one leader crash";
}

}  // namespace
}  // namespace wsn
