// Energy-exhaustion fault model (sim/depletion_monitor.h) and proactive
// leader handoff (emulation/failure_detector.h): a finite battery watched
// by the DepletionMonitor becomes a deterministic, exactly-once-traced
// death at the crossing tick; a leader below the handoff low-water mark
// retires to its best-supplied member strictly before dying; and a handoff
// racing a deadline collective bumps the binding epoch mid-reduce so the
// deposed leader's in-flight contribution lands in stale_rejected — with
// the whole race byte-identical under replay.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "core/primitives.h"
#include "emulation/failure_detector.h"
#include "obs/analyze/check.h"
#include "obs/export.h"
#include "obs/metrics_registry.h"
#include "obs/sinks.h"
#include "obs/trace.h"
#include "sim/depletion_monitor.h"

namespace wsn {
namespace {

using core::GridCoord;

constexpr std::size_t kSide = 4;
constexpr std::size_t kNodes = 60;
constexpr double kRange = 1.3;
constexpr std::uint64_t kSeed = 7;

TEST(DepletionMonitor, BudgetCrossingBecomesTracedDeath) {
  obs::RingBufferSink sink(1u << 20);
  obs::ScopedTrace capture(sink, obs::kAllCategories);
  bench::PhysicalStack stack(kSide, kNodes, kRange, kSeed);
  ASSERT_TRUE(stack.healthy());
  stack.enable_arq();
  sim::DepletionMonitor monitor(stack.sim, *stack.link);
  monitor.arm();
  emulation::FailureDetector detector(*stack.overlay);

  const GridCoord cell{1, 1};
  const net::NodeId leader = stack.overlay->bound_node(cell);
  ASSERT_NE(leader, net::kNoNode);
  // ~30 units of runway: heartbeat flooding alone drains a busy leader in
  // well under a minute at this stack density.
  stack.ledger->set_budget(leader, stack.ledger->spent(leader) + 30.0);

  detector.start();
  stack.sim.run_until(stack.sim.now() + 240.0);
  detector.stop();
  stack.sim.run();

  ASSERT_EQ(monitor.deaths().size(), 1u);
  const sim::DepletionRecord& death = monitor.deaths().front();
  EXPECT_EQ(death.node, leader);
  EXPECT_GE(death.spent, death.budget);
  EXPECT_TRUE(stack.link->is_down(leader));
  EXPECT_TRUE(stack.ledger->depleted(leader));
  EXPECT_EQ(monitor.alive_count(), kNodes - 1);

  // Exactly one energy.depleted event, and the full depletion oracle is
  // clean: no frame from the dead node later than its crossing tick.
  const auto events = sink.events();
  std::size_t depleted_events = 0;
  for (const obs::TraceEvent& ev : events) {
    if (ev.name == "energy.depleted") ++depleted_events;
  }
  EXPECT_EQ(depleted_events, 1u);
  const auto report = obs::analyze::check_depletion(events);
  EXPECT_TRUE(report.ok()) << (report.issues.empty() ? "" : report.issues[0]);
  EXPECT_EQ(report.flows_checked, 1u);

  // Registered instruments agree with the monitor.
  obs::MetricsRegistry registry;
  monitor.register_metrics(registry);
  EXPECT_DOUBLE_EQ(registry.gauge("energy.depleted_nodes"), 1.0);
  EXPECT_DOUBLE_EQ(registry.gauge("energy.alive_nodes"),
                   static_cast<double>(kNodes - 1));
  // One finite budget -> one histogram sample (residual clamped >= 0).
  EXPECT_EQ(monitor.residual_histogram().count(), 1u);
}

TEST(ProactiveHandoff, LeaderRetiresBeforeItsBatteryDies) {
  obs::RingBufferSink sink(1u << 20);
  obs::ScopedTrace capture(sink, obs::kAllCategories);
  bench::PhysicalStack stack(kSide, kNodes, kRange, kSeed);
  ASSERT_TRUE(stack.healthy());
  stack.enable_arq();
  sim::DepletionMonitor monitor(stack.sim, *stack.link);
  monitor.arm();

  emulation::FailureDetectorConfig cfg;
  // Reserve below the mark must absorb the handoff's own kElect flood
  // storm plus the drain until the claim commits (chaos_soak.cpp).
  cfg.handoff_low_water = 48.0;
  emulation::FailureDetector detector(*stack.overlay, cfg);

  const GridCoord cell{1, 1};
  const net::NodeId leader = stack.overlay->bound_node(cell);
  ASSERT_NE(leader, net::kNoNode);
  stack.ledger->set_budget(leader, stack.ledger->spent(leader) + 80.0);

  detector.start();
  stack.sim.run_until(stack.sim.now() + 400.0);

  // The handoff claim precedes the battery death, deposing the leader with
  // zero leaderless time; the successor is a different cell member.
  ASSERT_EQ(monitor.deaths().size(), 1u);
  ASSERT_GE(detector.claims().size(), 1u);
  const emulation::ClaimRecord& claim = detector.claims().front();
  EXPECT_TRUE(claim.planned);
  EXPECT_EQ(claim.old_leader, leader);
  EXPECT_NE(claim.winner, leader);
  EXPECT_EQ(claim.cell, cell);
  EXPECT_LT(claim.at, monitor.deaths().front().at);
  EXPECT_GE(claim.epoch, 1u);
  EXPECT_EQ(detector.planned_handoffs(), detector.claims().size());
  EXPECT_GE(detector.counters().get("fd.handoff"), 1u);
  EXPECT_TRUE(detector.split_brains().empty());
  // The overlay now routes the cell at the successor.
  EXPECT_EQ(stack.overlay->bound_node(cell), claim.winner);

  detector.stop();
  stack.sim.run();
  const auto events = sink.events();
  const auto dep = obs::analyze::check_depletion(events);
  EXPECT_TRUE(dep.ok()) << (dep.issues.empty() ? "" : dep.issues[0]);
  const auto fd = obs::analyze::check_failure_detection(events);
  EXPECT_TRUE(fd.ok()) << (fd.issues.empty() ? "" : fd.issues[0]);
}

TEST(ProactiveHandoff, RequestHandoffElectsBestResidualCandidate) {
  bench::PhysicalStack stack(kSide, kNodes, kRange, kSeed);
  ASSERT_TRUE(stack.healthy());
  stack.enable_arq();

  emulation::FailureDetectorConfig cfg;
  cfg.handoff_low_water = 10.0;
  emulation::FailureDetector detector(*stack.overlay, cfg);
  detector.start();
  stack.sim.run_until(stack.sim.now() + 20.0);

  // Give every member a finite budget so residuals are comparable, with
  // one clearly best-supplied member: the handoff must pick exactly it.
  const GridCoord cell{1, 1};
  const net::NodeId leader = stack.overlay->bound_node(cell);
  net::NodeId best = net::kNoNode;
  for (const net::NodeId m : stack.mapper->members(cell)) {
    if (m == leader) {
      stack.ledger->set_budget(m, stack.ledger->spent(m) + 200.0);
    } else if (best == net::kNoNode) {
      best = m;
      stack.ledger->set_budget(m, stack.ledger->spent(m) + 400.0);
    } else {
      stack.ledger->set_budget(m, stack.ledger->spent(m) + 50.0);
    }
  }
  ASSERT_NE(best, net::kNoNode);

  ASSERT_TRUE(detector.request_handoff(cell));
  stack.sim.run_until(stack.sim.now() + 30.0);

  ASSERT_GE(detector.claims().size(), 1u);
  const emulation::ClaimRecord& claim = detector.claims().front();
  EXPECT_TRUE(claim.planned);
  EXPECT_EQ(claim.old_leader, leader);
  EXPECT_EQ(claim.winner, best) << "highest residual energy must win";
  detector.stop();
  stack.sim.run();
}

/// One full run of the handoff-vs-deadline-collective race, returning the
/// byte-exact JSONL capture plus the partial result. The handoff deposes a
/// far cell's leader while its contribution is still routing toward the
/// collector, so the stale-epoch rejection is exercised end to end.
std::string run_handoff_race(core::PartialResult* out) {
  obs::RingBufferSink sink(1u << 20);
  bench::PhysicalStack stack(kSide, kNodes, kRange, kSeed);
  EXPECT_TRUE(stack.healthy());
  stack.enable_arq();

  emulation::FailureDetectorConfig cfg;
  cfg.handoff_low_water = 10.0;
  cfg.election_timeout = 1.0;  // commit the claim while routing is in flight
  emulation::FailureDetector detector(*stack.overlay, cfg);
  detector.start();
  stack.sim.run_until(stack.sim.now() + 10.0);

  // Capture only the race (setup and detector spin-up already ran), with
  // the flow counter rewound so two runs are byte-comparable.
  obs::ScopedTrace capture(sink, obs::kAllCategories);
  obs::tracer().reset_flows();

  const GridCoord victim{3, 3};  // farthest from the collector: in flight
                                 // the longest
  const std::vector<GridCoord> cells = stack.overlay->grid().all_coords();
  const std::vector<double> values(cells.size(), 1.0);
  std::vector<core::PartialResult> results;
  const double t0 = stack.sim.now();
  core::group_reduce_deadline(
      *stack.overlay, cells, {0, 0}, values, core::ReduceOp::kSum, 1.0, 60.0,
      [&results](const core::PartialResult& p) { results.push_back(p); });
  stack.sim.schedule_in(0.1, [&detector, victim] {
    EXPECT_TRUE(detector.request_handoff(victim));
  });
  stack.sim.run_until(t0 + 70.0);
  detector.stop();
  stack.sim.run();

  EXPECT_EQ(results.size(), 1u);
  if (!results.empty()) *out = results.front();
  std::ostringstream text;
  obs::write_jsonl(sink.events(), text);
  return text.str();
}

TEST(ProactiveHandoff, RacingDeadlineCollectiveRejectsStaleContribution) {
  core::PartialResult first;
  const std::string trace_a = run_handoff_race(&first);

  // The deposed leader's in-flight contribution must land in
  // stale_rejected, not in the fold.
  EXPECT_GE(first.stale_rejected, 1u);
  bool victim_contributed = false;
  for (const GridCoord& c : first.contributors) {
    if (c.row == 3 && c.col == 3) victim_contributed = true;
  }
  EXPECT_FALSE(victim_contributed)
      << "the stale-epoch contribution must not be folded";
  EXPECT_DOUBLE_EQ(first.value, static_cast<double>(first.contributors.size()));

  // Same seed, same race, byte-identical trace: the depletion fault model
  // keeps the simulation's determinism contract.
  core::PartialResult second;
  const std::string trace_b = run_handoff_race(&second);
  EXPECT_EQ(trace_a, trace_b);
  EXPECT_EQ(first.stale_rejected, second.stale_rejected);
}

}  // namespace
}  // namespace wsn
