// Distributed storage + decoupled query processing (Section 3.1).
#include <gtest/gtest.h>

#include "app/field.h"
#include "app/labeling.h"
#include "app/storage.h"
#include "core/virtual_network.h"

namespace wsn::app {
namespace {

TEST(Storage, StoredCountsPartitionTheRegionSet) {
  sim::Rng rng(1);
  for (int trial = 0; trial < 8; ++trial) {
    const FeatureGrid grid = random_grid(16, 0.45, rng);
    sim::Simulator sim(static_cast<std::uint64_t>(trial) + 1);
    core::VirtualNetwork vnet(sim, core::GridTopology(16),
                              core::uniform_cost_model());
    const RegionStore store = run_and_store(vnet, grid);
    const Labeling reference = label_regions(grid);
    EXPECT_EQ(store.total_regions, reference.region_count());
    double sum = 0;
    for (double v : store.closed_here) sum += v;
    EXPECT_DOUBLE_EQ(sum, static_cast<double>(reference.region_count()))
        << "every region must close at exactly one node";
  }
}

TEST(Storage, OnlyMergingLeadersStore) {
  const FeatureGrid grid = checkerboard_grid(8);
  sim::Simulator sim(1);
  core::VirtualNetwork vnet(sim, core::GridTopology(8),
                            core::uniform_cost_model());
  const RegionStore store = run_and_store(vnet, grid);
  core::GroupHierarchy groups((core::GridTopology(8)));
  for (std::size_t i = 0; i < store.closed_here.size(); ++i) {
    if (store.closed_here[i] == 0.0) continue;
    const core::GridCoord c = vnet.grid().coord_of(i);
    // Storage nodes are leaders at some level >= 1.
    EXPECT_TRUE(groups.is_leader(c, 1) || groups.is_leader(c, 2) ||
                groups.is_leader(c, 3))
        << "non-leader stored a count at " << c.row << "," << c.col;
  }
}

TEST(Storage, CountQueryReturnsExactTotal) {
  sim::Rng rng(2);
  const FeatureGrid grid = random_grid(16, 0.4, rng);
  sim::Simulator sim(3);
  core::VirtualNetwork vnet(sim, core::GridTopology(16),
                            core::uniform_cost_model());
  const RegionStore store = run_and_store(vnet, grid);
  const auto result = count_regions_query(vnet, store);
  EXPECT_DOUBLE_EQ(result.value, static_cast<double>(store.total_regions));
}

TEST(Storage, QueryIsCheaperThanRegathering) {
  sim::Rng rng(3);
  const FeatureGrid grid = random_grid(16, 0.4, rng);
  sim::Simulator sim(4);
  core::VirtualNetwork vnet(sim, core::GridTopology(16),
                            core::uniform_cost_model());
  const RegionStore store = run_and_store(vnet, grid);
  const double gather_energy = vnet.ledger().total();
  const auto result = count_regions_query(vnet, store);
  const double query_energy = vnet.ledger().total() - gather_energy;
  EXPECT_LT(query_energy, gather_energy / 4.0)
      << "stored-count query should be far cheaper than re-gathering";
  EXPECT_GT(result.messages, 0u);
}

TEST(Storage, EmptyFieldAnswersZeroForFree) {
  const FeatureGrid grid = empty_grid(8);
  sim::Simulator sim(5);
  core::VirtualNetwork vnet(sim, core::GridTopology(8),
                            core::uniform_cost_model());
  const RegionStore store = run_and_store(vnet, grid);
  EXPECT_EQ(store.total_regions, 0u);
  const double before = vnet.ledger().total();
  const auto result = count_regions_query(vnet, store);
  EXPECT_DOUBLE_EQ(result.value, 0.0);
  EXPECT_DOUBLE_EQ(vnet.ledger().total(), before);  // no traffic at all
}

TEST(Storage, SingleRegionClosesAtRootOnly) {
  const FeatureGrid grid = full_grid(8);
  sim::Simulator sim(6);
  core::VirtualNetwork vnet(sim, core::GridTopology(8),
                            core::uniform_cost_model());
  const RegionStore store = run_and_store(vnet, grid);
  EXPECT_EQ(store.total_regions, 1u);
  // The single grid-spanning region stays open until the root.
  EXPECT_DOUBLE_EQ(store.closed_here[vnet.grid().index_of({0, 0})], 1.0);
  double elsewhere = 0;
  for (std::size_t i = 1; i < store.closed_here.size(); ++i) {
    elsewhere += store.closed_here[i];
  }
  EXPECT_DOUBLE_EQ(elsewhere, 0.0);
}

}  // namespace
}  // namespace wsn::app
