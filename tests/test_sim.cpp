// Discrete-event kernel: RNG determinism, event ordering, cancellation,
// clock semantics, statistics.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <string>
#include <vector>

#include "core/primitives.h"
#include "core/virtual_network.h"
#include "obs/export.h"
#include "obs/sinks.h"
#include "obs/trace.h"
#include "sim/event_queue.h"
#include "sim/fault_plan.h"
#include "sim/rng.h"
#include "sim/simulator.h"
#include "sim/trace.h"

namespace wsn::sim {
namespace {

TEST(Rng, DeterministicPerSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
  Rng c(124);
  bool differs = false;
  Rng a2(123);
  for (int i = 0; i < 10; ++i) differs |= a2() != c();
  EXPECT_TRUE(differs);
}

TEST(Rng, ZeroSeedIsUsable) {
  Rng r(0);
  bool nonzero = false;
  for (int i = 0; i < 10; ++i) nonzero |= r() != 0;
  EXPECT_TRUE(nonzero);
}

TEST(Rng, UniformInRange) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    const double v = r.uniform();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
    const double w = r.uniform(3.0, 5.0);
    EXPECT_GE(w, 3.0);
    EXPECT_LT(w, 5.0);
  }
}

TEST(Rng, BelowIsUnbiasedEnough) {
  Rng r(11);
  std::vector<int> counts(10, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[r.below(10)];
  for (int c : counts) {
    EXPECT_NEAR(c, n / 10, n / 100);  // within 10% relative
  }
}

TEST(Rng, BetweenCoversBothEndpoints) {
  Rng r(13);
  bool lo = false;
  bool hi = false;
  for (int i = 0; i < 1000; ++i) {
    const auto v = r.between(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    lo |= v == -2;
    hi |= v == 2;
  }
  EXPECT_TRUE(lo);
  EXPECT_TRUE(hi);
}

TEST(Rng, NormalMomentsRoughlyCorrect) {
  Rng r(17);
  Summary s;
  for (int i = 0; i < 50000; ++i) s.add(r.normal(10.0, 2.0));
  EXPECT_NEAR(s.mean(), 10.0, 0.05);
  EXPECT_NEAR(s.stddev(), 2.0, 0.05);
}

TEST(Rng, SplitStreamsAreIndependent) {
  Rng parent(5);
  Rng child = parent.split();
  // Child stream should differ from the parent's continuation.
  bool differs = false;
  for (int i = 0; i < 10; ++i) differs |= parent() != child();
  EXPECT_TRUE(differs);
}

TEST(EventQueue, FifoTieBreaking) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(1.0, [&] { order.push_back(1); });
  q.schedule(1.0, [&] { order.push_back(2); });
  q.schedule(0.5, [&] { order.push_back(0); });
  while (!q.empty()) q.pop().second();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(EventQueue, CancelSkipsEvent) {
  EventQueue q;
  int fired = 0;
  q.schedule(1.0, [&] { ++fired; });
  const EventId b = q.schedule(2.0, [&] { fired += 10; });
  q.schedule(3.0, [&] { ++fired; });
  EXPECT_TRUE(q.cancel(b));
  EXPECT_EQ(q.size(), 2u);
  while (!q.empty()) q.pop().second();
  EXPECT_EQ(fired, 2);
}

TEST(EventQueue, DoubleCancelReturnsFalse) {
  EventQueue q;
  const EventId id = q.schedule(1.0, [] {});
  EXPECT_TRUE(q.cancel(id));
  EXPECT_FALSE(q.cancel(id));
  EXPECT_FALSE(q.cancel(9999));
  EXPECT_TRUE(q.empty());
}

TEST(Simulator, ClockAdvancesMonotonically) {
  Simulator sim;
  std::vector<Time> times;
  sim.schedule_in(2.0, [&] { times.push_back(sim.now()); });
  sim.schedule_in(1.0, [&] {
    times.push_back(sim.now());
    sim.schedule_in(0.5, [&] { times.push_back(sim.now()); });
  });
  sim.run();
  EXPECT_EQ(times, (std::vector<Time>{1.0, 1.5, 2.0}));
  EXPECT_EQ(sim.events_processed(), 3u);
}

TEST(Simulator, PostRunsAtCurrentTime) {
  Simulator sim;
  sim.schedule_in(5.0, [&] {
    sim.post([&] { EXPECT_EQ(sim.now(), 5.0); });
  });
  sim.run();
  EXPECT_EQ(sim.now(), 5.0);
}

TEST(Simulator, SchedulingInPastThrows) {
  Simulator sim;
  sim.schedule_in(1.0, [&] {
    EXPECT_THROW(sim.schedule_at(0.5, [] {}), std::invalid_argument);
  });
  sim.run();
}

TEST(Simulator, RunUntilStopsAtBoundary) {
  Simulator sim;
  int fired = 0;
  sim.schedule_in(1.0, [&] { ++fired; });
  sim.schedule_in(2.0, [&] { ++fired; });
  sim.schedule_in(3.0, [&] { ++fired; });
  sim.run_until(2.0);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(sim.now(), 2.0);
  EXPECT_EQ(sim.pending(), 1u);
  sim.run();
  EXPECT_EQ(fired, 3);
}

TEST(Simulator, EventBudgetGuardsRunaway) {
  Simulator sim;
  std::function<void()> loop = [&] { sim.post(loop); };
  sim.post(loop);
  EXPECT_THROW(sim.run(1000), std::runtime_error);
}

TEST(Trace, CountersAccumulate) {
  CounterSet counters;
  counters.add("a");
  counters.add("a", 4);
  counters.add("b");
  EXPECT_EQ(counters.get("a"), 5u);
  EXPECT_EQ(counters.get("b"), 1u);
  EXPECT_EQ(counters.get("missing"), 0u);
  counters.reset();
  EXPECT_EQ(counters.get("a"), 0u);
}

TEST(Trace, SummaryStatistics) {
  Summary s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(Trace, EmptySummaryIsSafe) {
  Summary s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.stddev(), 0.0);
  EXPECT_EQ(s.cv(), 0.0);
}

// Two arms of the same fault plan on identically seeded simulators must
// produce byte-identical traces — the contract that makes fault campaigns
// replayable (ROADMAP: "inject the same fault schedule across two runs").
TEST(FaultCampaignDeterminism, SameSeedAndPlanReplayIdentically) {
  auto capture = [](std::uint64_t seed) {
    obs::RingBufferSink sink(1u << 16);
    Simulator sim(seed);
    core::VirtualNetwork vnet(sim, core::GridTopology(4), core::CostModel{});
    obs::ScopedTrace scope(sink);
    obs::tracer().reset_flows();
    FaultInjector injector(sim, vnet);
    injector.arm(FaultPlan::from_json(R"({"events": [
      {"at": 2.0, "kind": "crash", "node": 5},
      {"at": 4.0, "kind": "crash", "node": 9},
      {"at": 8.0, "kind": "recover", "node": 5}
    ]})"));
    std::vector<core::GridCoord> members;
    std::vector<double> values;
    for (const core::GridCoord& c : core::GridTopology(4).all_coords()) {
      members.push_back(c);
      values.push_back(1.0);
    }
    core::group_reduce_deadline(vnet, members, {0, 0}, values,
                                core::ReduceOp::kSum, 1.0, 30.0,
                                [](const core::PartialResult&) {});
    sim.run();
    std::ostringstream out;
    obs::write_jsonl(sink.events(), out);
    return out.str();
  };
  const std::string a = capture(7);
  EXPECT_FALSE(a.empty());
  EXPECT_NE(a.find("fault.crash"), std::string::npos);
  // (No cross-seed assertion: the virtual layer consumes no randomness, so
  // differently seeded runs are legitimately identical too.)
  EXPECT_EQ(a, capture(7));
}

TEST(Trace, LinearFitRecoversLine) {
  std::vector<double> xs;
  std::vector<double> ys;
  for (int i = 0; i < 20; ++i) {
    xs.push_back(i);
    ys.push_back(3.0 + 2.5 * i);
  }
  const LinearFit f = fit_line(xs, ys);
  EXPECT_NEAR(f.slope, 2.5, 1e-9);
  EXPECT_NEAR(f.intercept, 3.0, 1e-9);
  EXPECT_NEAR(f.r2, 1.0, 1e-12);
}

}  // namespace
}  // namespace wsn::sim
