// Runtime system (Section 5): cell mapping, topology emulation protocol,
// leader binding, overlay routing.
#include <gtest/gtest.h>

#include <memory>

#include "emulation/cell_mapper.h"
#include "emulation/emulation_protocol.h"
#include "emulation/leader_binding.h"
#include "emulation/overlay_network.h"
#include "net/deployment.h"
#include "sim/simulator.h"

namespace wsn::emulation {
namespace {

/// Dense, cell-covering deployment fixture shared by the protocol tests.
struct Deployment {
  Deployment(std::size_t grid_side, std::size_t nodes, double range,
             std::uint64_t seed)
      : terrain(net::square_terrain(static_cast<double>(grid_side))),
        sim(seed) {
    net::DeploymentConfig cfg;
    cfg.kind = net::DeploymentKind::kOnePerCellPlus;
    cfg.node_count = nodes;
    cfg.terrain = terrain;
    cfg.cells_per_side = grid_side;
    positions = net::deploy(cfg, sim.rng());
    graph = std::make_unique<net::NetworkGraph>(positions, range);
    mapper = std::make_unique<CellMapper>(*graph, terrain, grid_side);
    ledger = std::make_unique<net::EnergyLedger>(graph->node_count());
    link = std::make_unique<net::LinkLayer>(
        sim, *graph, net::RadioModel{range, 1.0, 1.0, 1.0}, net::CpuModel{},
        *ledger);
  }

  net::Rect terrain;
  sim::Simulator sim;
  std::vector<net::Point> positions;
  std::unique_ptr<net::NetworkGraph> graph;
  std::unique_ptr<CellMapper> mapper;
  std::unique_ptr<net::EnergyLedger> ledger;
  std::unique_ptr<net::LinkLayer> link;
};

TEST(CellMapper, AssignsNodesToCells) {
  Deployment d(4, 64, 1.5, 42);
  EXPECT_TRUE(d.mapper->all_cells_occupied());
  for (net::NodeId i = 0; i < d.graph->node_count(); ++i) {
    const core::GridCoord cell = d.mapper->cell_of(i);
    EXPECT_TRUE(d.mapper->cell_rect(cell).contains(d.graph->position(i)));
    const auto members = d.mapper->members(cell);
    EXPECT_NE(std::ranges::find(members, i), members.end());
  }
}

TEST(CellMapper, CellCentersAndDistances) {
  Deployment d(4, 64, 1.5, 43);
  EXPECT_EQ(d.mapper->cell_center({0, 0}).x, 0.5);
  EXPECT_EQ(d.mapper->cell_center({0, 0}).y, 0.5);
  EXPECT_EQ(d.mapper->cell_center({3, 1}).x, 1.5);
  EXPECT_EQ(d.mapper->cell_center({3, 1}).y, 3.5);
  for (net::NodeId i = 0; i < 10; ++i) {
    EXPECT_GE(d.mapper->distance_to_center(i), 0.0);
    EXPECT_LE(d.mapper->distance_to_center(i), std::sqrt(0.5) + 1e-9);
  }
}

TEST(CellMapper, DiagnosticsReportGaps) {
  // Two nodes in one corner of a 2x2 partition: three cells empty.
  net::NetworkGraph graph({{0.1, 0.1}, {0.2, 0.2}}, 1.0);
  CellMapper mapper(graph, net::square_terrain(2.0), 2);
  EXPECT_FALSE(mapper.all_cells_occupied());
  EXPECT_EQ(mapper.unoccupied_cells().size(), 3u);
}

TEST(CellMapper, DisconnectedCellsReportOnlyFracturedCells) {
  // 3x3 partition of a 3.0 terrain (cell side 1.0), radio range 0.3.
  // Cell (0,0): two nodes within range — connected. Cell (1,1): two nodes
  // in opposite corners of the cell, out of range — fractured. Cell
  // (2,2): a singleton, trivially connected. Six cells stay empty, and
  // empty is reported as unoccupied, never as disconnected.
  net::NetworkGraph graph(
      {{0.1, 0.1}, {0.2, 0.2}, {1.1, 1.1}, {1.9, 1.9}, {2.5, 2.5}}, 0.3);
  CellMapper mapper(graph, net::square_terrain(3.0), 3);
  EXPECT_FALSE(mapper.all_cells_occupied());
  EXPECT_FALSE(mapper.all_cells_connected());
  EXPECT_EQ(mapper.unoccupied_cells().size(), 6u);
  const auto fractured = mapper.disconnected_cells();
  ASSERT_EQ(fractured.size(), 1u);
  EXPECT_EQ(fractured[0], (core::GridCoord{1, 1}));
  for (const core::GridCoord& cell : mapper.unoccupied_cells()) {
    EXPECT_TRUE(mapper.members(cell).empty());
  }
}

TEST(CellMapper, BoundaryPositionsClampIntoTheGrid) {
  // Nodes exactly on the terrain edge (and one past it, from measurement
  // noise) must land in the nearest real cell, not index out of range.
  net::NetworkGraph graph({{0.0, 0.0}, {2.0, 2.0}, {2.3, 1.0}}, 1.5);
  CellMapper mapper(graph, net::square_terrain(2.0), 2);
  EXPECT_EQ(mapper.cell_of(0), (core::GridCoord{0, 0}));
  EXPECT_EQ(mapper.cell_of(1), (core::GridCoord{1, 1}));
  EXPECT_EQ(mapper.cell_of(2), (core::GridCoord{1, 1}));
  EXPECT_TRUE(mapper.disconnected_cells().empty());
  EXPECT_EQ(mapper.unoccupied_cells().size(), 2u);
}

TEST(AdjacentDirection, FourNeighbors) {
  EXPECT_EQ(adjacent_direction({1, 1}, {0, 1}), core::Direction::kNorth);
  EXPECT_EQ(adjacent_direction({1, 1}, {1, 2}), core::Direction::kEast);
  EXPECT_EQ(adjacent_direction({1, 1}, {2, 1}), core::Direction::kSouth);
  EXPECT_EQ(adjacent_direction({1, 1}, {1, 0}), core::Direction::kWest);
  EXPECT_FALSE(adjacent_direction({1, 1}, {2, 2}).has_value());
  EXPECT_FALSE(adjacent_direction({1, 1}, {1, 1}).has_value());
}

TEST(TopologyEmulation, TablesRouteToAdjacentCells) {
  Deployment d(4, 128, 1.2, 7);
  ASSERT_TRUE(d.mapper->all_cells_occupied());
  ASSERT_TRUE(d.mapper->all_cells_connected());
  const EmulationResult result = run_topology_emulation(*d.link, *d.mapper);
  EXPECT_TRUE(result.boundary_audit_passed);
  EXPECT_GT(result.broadcasts, 0u);

  // Every node must end with a chain leading into each geographically
  // adjacent cell.
  core::GridTopology grid(4);
  for (net::NodeId i = 0; i < d.graph->node_count(); ++i) {
    const core::GridCoord cell = d.mapper->cell_of(i);
    for (core::Direction dir : core::kAllDirections) {
      const auto nbr = grid.neighbor(cell, dir);
      if (!nbr) {
        continue;  // terrain edge: entry may legitimately be null
      }
      const auto chain = follow_chain(*d.mapper, result.tables, i, dir);
      ASSERT_FALSE(chain.empty())
          << "node " << i << " has no route " << core::to_string(dir);
      // The chain ends in the adjacent cell and crosses exactly one boundary.
      EXPECT_EQ(d.mapper->cell_of(chain.back()), *nbr);
      for (std::size_t k = 0; k + 1 < chain.size(); ++k) {
        EXPECT_EQ(d.mapper->cell_of(chain[k]), cell);
        EXPECT_TRUE(d.graph->has_edge(chain[k], chain[k + 1]));
      }
    }
  }
}

TEST(TopologyEmulation, ForeignTablesAreSuppressed) {
  Deployment d(4, 96, 1.2, 8);
  const EmulationResult result = run_topology_emulation(*d.link, *d.mapper);
  // Suppressions happen whenever a broadcast crosses a boundary; in a dense
  // deployment there must be some.
  EXPECT_GT(result.suppressed, 0u);
  EXPECT_LE(result.suppressed, result.deliveries);
}

TEST(TopologyEmulation, JitterStillConverges) {
  Deployment d(4, 96, 1.3, 9);
  const EmulationResult r = run_topology_emulation(*d.link, *d.mapper, 2.0);
  core::GridTopology grid(4);
  for (net::NodeId i = 0; i < d.graph->node_count(); ++i) {
    for (core::Direction dir : core::kAllDirections) {
      if (grid.neighbor(d.mapper->cell_of(i), dir)) {
        EXPECT_FALSE(follow_chain(*d.mapper, r.tables, i, dir).empty());
      }
    }
  }
}

TEST(LeaderBinding, ElectsNodeClosestToCenter) {
  Deployment d(4, 128, 1.2, 10);
  ASSERT_TRUE(d.mapper->all_cells_connected());
  const BindingResult result = run_leader_binding(*d.link, *d.mapper);
  EXPECT_TRUE(result.unique_leaders);
  const auto oracle =
      oracle_leaders(*d.mapper, BindingMetric::kDistanceToCenter, *d.ledger);
  EXPECT_EQ(result.leaders, oracle);
}

TEST(LeaderBinding, ResidualEnergyMetricElectsFullestNode) {
  Deployment d(2, 32, 1.5, 11);
  // Bias: spend energy on some nodes first.
  net::EnergyLedger ledger(d.graph->node_count(), 100.0);
  for (net::NodeId i = 0; i < d.graph->node_count(); i += 2) {
    ledger.charge(i, net::EnergyUse::kCompute, static_cast<double>(i));
  }
  net::LinkLayer link(d.sim, *d.graph, net::RadioModel{1.5, 1.0, 1.0, 1.0},
                      net::CpuModel{}, ledger);
  // The oracle must see the residual energies at election start: the
  // election's own broadcasts drain the same ledger while running.
  const auto oracle =
      oracle_leaders(*d.mapper, BindingMetric::kResidualEnergy, ledger);
  const BindingResult result =
      run_leader_binding(link, *d.mapper, BindingMetric::kResidualEnergy);
  EXPECT_TRUE(result.unique_leaders);
  EXPECT_EQ(result.leaders, oracle);
}

TEST(LeaderBinding, EveryCellGetsExactlyOneLeader) {
  Deployment d(8, 512, 1.2, 12);
  ASSERT_TRUE(d.mapper->all_cells_occupied());
  ASSERT_TRUE(d.mapper->all_cells_connected());
  const BindingResult result = run_leader_binding(*d.link, *d.mapper);
  EXPECT_TRUE(result.unique_leaders);
  for (const net::NodeId leader : result.leaders) {
    EXPECT_NE(leader, net::kNoNode);
  }
}

class OverlayTest : public ::testing::Test {
 protected:
  OverlayTest() : d_(4, 160, 1.2, 21) {
    EXPECT_TRUE(d_.mapper->all_cells_occupied());
    EXPECT_TRUE(d_.mapper->all_cells_connected());
    auto emulation = run_topology_emulation(*d_.link, *d_.mapper);
    auto binding = run_leader_binding(*d_.link, *d_.mapper);
    overlay_ = std::make_unique<OverlayNetwork>(*d_.link, *d_.mapper,
                                                std::move(emulation),
                                                std::move(binding));
  }

  Deployment d_;
  std::unique_ptr<OverlayNetwork> overlay_;
};

TEST_F(OverlayTest, DeliversBetweenBoundLeaders) {
  int got = 0;
  core::GridCoord from{-1, -1};
  overlay_->set_receiver({3, 3}, [&](const core::VirtualMessage& m) {
    ++got;
    from = m.sender;
  });
  overlay_->send({0, 0}, {3, 3}, 17, 1.0);
  d_.sim.run();
  EXPECT_EQ(got, 1);
  EXPECT_EQ(from, (core::GridCoord{0, 0}));
  EXPECT_EQ(overlay_->failed_sends(), 0u);
  EXPECT_GE(overlay_->physical_hops(), core::manhattan({0, 0}, {3, 3}));
}

TEST_F(OverlayTest, SelfSendDeliversLocally) {
  int got = 0;
  overlay_->set_receiver({1, 2}, [&](const core::VirtualMessage&) { ++got; });
  overlay_->send({1, 2}, {1, 2}, 0, 1.0);
  d_.sim.run();
  EXPECT_EQ(got, 1);
}

TEST_F(OverlayTest, AllPairsRoutable) {
  core::GridTopology grid(4);
  int delivered = 0;
  for (const core::GridCoord& to : grid.all_coords()) {
    overlay_->set_receiver(to,
                           [&](const core::VirtualMessage&) { ++delivered; });
  }
  int sent = 0;
  for (const core::GridCoord& from : grid.all_coords()) {
    for (const core::GridCoord& to : grid.all_coords()) {
      if (from == to) continue;
      overlay_->send(from, to, 0, 1.0);
      ++sent;
    }
  }
  d_.sim.run();
  EXPECT_EQ(delivered, sent);
  EXPECT_EQ(overlay_->failed_sends(), 0u);
  // Stretch is finite and at least 1.
  EXPECT_GE(overlay_->physical_hops(), overlay_->virtual_hops());
}

TEST_F(OverlayTest, RouteStateIsInertWithoutMembership) {
  // Perimeter (right-hand wall) routing only engages in membership mode.
  // With the default stack the RouteState-threaded entry point must pick
  // the exact hop classic dimension-order routing picks — never touching
  // the frame's detour bytes — so default-mode traces stay byte-identical.
  core::GridTopology grid(4);
  for (const core::GridCoord& from : grid.all_coords()) {
    const net::NodeId at = overlay_->bound_node(from);
    for (const core::GridCoord& to : grid.all_coords()) {
      if (from == to) continue;
      OverlayNetwork::RouteState rs;
      const net::NodeId with_state = overlay_->route_next_hop(at, to,
                                                              net::kNoNode,
                                                              &rs);
      const net::NodeId classic = overlay_->route_next_hop(at, to);
      EXPECT_EQ(with_state, classic);
      EXPECT_EQ(rs.detour, 0);
      EXPECT_EQ(rs.entry_dist, 0);
      EXPECT_EQ(rs.ttl, 0);
    }
  }
}

TEST_F(OverlayTest, EnergyLandsInPhysicalLedger) {
  overlay_->set_receiver({0, 3}, [](const core::VirtualMessage&) {});
  const double before = d_.ledger->total();
  overlay_->send({0, 0}, {0, 3}, 0, 2.0);
  d_.sim.run();
  const double after = d_.ledger->total();
  // Each physical hop moves 2 units: tx+rx = 4 energy per hop.
  EXPECT_GE(after - before, 4.0 * 3);
}

TEST_F(OverlayTest, ComputeChargesBoundNode) {
  const net::NodeId bound = overlay_->bound_node({2, 2});
  const double before = d_.ledger->spent(bound);
  overlay_->compute({2, 2}, 3.0);
  EXPECT_DOUBLE_EQ(d_.ledger->spent(bound) - before, 3.0);
}

}  // namespace
}  // namespace wsn::emulation
