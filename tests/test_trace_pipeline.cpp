// The scale-capture pipeline end to end: compact binary wtr encoding,
// streaming file sinks with rotation, the unified TraceReader (wtr segment
// dirs and JSONL behind one interface, truncated tails as findings), the
// bounded-memory incremental analyzers, and the wsn-inspect convert/info
// commands — including the byte-identity contract between streamed and
// in-memory captures.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/analyze/check.h"
#include "obs/analyze/cli.h"
#include "obs/analyze/flows.h"
#include "obs/analyze/incremental.h"
#include "obs/export.h"
#include "obs/metrics_registry.h"
#include "obs/sinks.h"
#include "obs/stream_sink.h"
#include "obs/trace_reader.h"
#include "obs/wtr.h"

namespace {

using namespace wsn;
namespace fs = std::filesystem;

/// Per-test scratch directory (ctest runs gtest cases as parallel
/// processes, so names must be test-unique).
std::string unique_path(const std::string& name) {
  return testing::TempDir() +
         testing::UnitTest::GetInstance()->current_test_info()->name() + "." +
         name;
}

struct ScopedDir {
  explicit ScopedDir(std::string p) : path(std::move(p)) {
    fs::remove_all(path);
  }
  ~ScopedDir() { fs::remove_all(path); }
  std::string path;
};

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

/// n synthetic unit-latency flows (send + hop at t=k, deliver at t=k+1) —
/// the checker-clean shape the analyzers reconstruct without issues.
std::vector<obs::TraceEvent> flow_events(std::size_t n) {
  std::vector<obs::TraceEvent> events;
  for (std::size_t k = 0; k < n; ++k) {
    const double t = static_cast<double>(k);
    const auto src = static_cast<std::int64_t>(k % 1024);
    const auto dst = static_cast<std::int64_t>((k * 7 + 3) % 1024);
    const std::uint64_t flow = k + 1;
    obs::TraceEvent send{t, src, obs::Category::kVirtual, 'i', "send", flow,
                         {{"dst", dst},
                          {"size", 1.0},
                          {"hops", std::uint64_t{1}}}};
    obs::TraceEvent hop{t,    src,  obs::Category::kVirtual,
                        'i',  "hop", flow,
                        {{"next", dst}, {"depart", t + 1.0}, {"wait", 0.0}}};
    obs::TraceEvent deliver{t + 1.0, dst, obs::Category::kVirtual,
                            'i',     "deliver", flow, {}};
    events.push_back(std::move(send));
    events.push_back(std::move(hop));
    events.push_back(std::move(deliver));
  }
  return events;
}

/// Events exercising every corner of the encoding: all attr kinds, extreme
/// integers, sub-normal/negative-zero doubles, JSON-hostile strings, every
/// phase, negative node ids.
std::vector<obs::TraceEvent> nasty_events() {
  std::vector<obs::TraceEvent> events;
  obs::TraceEvent a{0.0, -1, obs::Category::kApp, 'B', "phase \"one\"\n", 0,
                    {{"min", std::int64_t{INT64_MIN}},
                     {"max", std::int64_t{INT64_MAX}},
                     {"umax", std::uint64_t{UINT64_MAX}},
                     {"tiny", 5e-324},
                     {"text", std::string("tab\t\\backslash\x01")}}};
  obs::TraceEvent b{-0.0, INT64_MIN, obs::Category::kReliability, 'E',
                    "", std::uint64_t{1} << 63,
                    {{"neg_zero", -0.0}, {"third", 1.0 / 3.0}}};
  obs::TraceEvent c{1e300, 42, obs::Category::kLink, 'i', "deliver", 7, {}};
  events.push_back(std::move(a));
  events.push_back(std::move(b));
  events.push_back(std::move(c));
  return events;
}

/// JSON has one number type, so the JSONL parser types integers by sign:
/// non-negative -> uint64, negative -> int64 (load_trace's long-standing
/// rule). A JSONL round trip therefore canonicalizes non-negative int64
/// attrs to uint64; only wtr preserves the exact kind (see
/// Wtr.RoundTripPreservesEveryEvent).
std::vector<obs::TraceEvent> jsonl_canonical(
    std::vector<obs::TraceEvent> events) {
  for (obs::TraceEvent& ev : events) {
    for (obs::Attr& attr : ev.attrs) {
      if (const auto* i = std::get_if<std::int64_t>(&attr.value);
          i != nullptr && *i >= 0) {
        attr.value = static_cast<std::uint64_t>(*i);
      }
    }
  }
  return events;
}

std::string write_capture(const std::string& dir,
                          const std::vector<obs::TraceEvent>& events,
                          obs::TraceFormat format,
                          std::uint64_t segment_bytes = 64ull << 20) {
  obs::StreamSinkConfig cfg;
  cfg.directory = dir;
  cfg.format = format;
  cfg.segment_bytes = segment_bytes;
  obs::StreamingFileSink sink(cfg);
  for (const obs::TraceEvent& ev : events) sink.accept(ev);
  EXPECT_TRUE(sink.close()) << sink.error();
  return dir;
}

std::vector<obs::TraceEvent> read_all(obs::TraceReader& reader) {
  std::vector<obs::TraceEvent> events;
  obs::TraceEvent ev;
  while (reader.next(ev)) events.push_back(ev);
  return events;
}

// ---------------------------------------------------------------------------
// wtr encoding

TEST(Wtr, RoundTripPreservesEveryEvent) {
  ScopedDir dir(unique_path("wtr"));
  auto events = flow_events(50);
  for (obs::TraceEvent& ev : nasty_events()) events.push_back(std::move(ev));
  write_capture(dir.path, events, obs::TraceFormat::kWtr);

  obs::TraceReader reader(dir.path);
  EXPECT_STREQ(reader.format(), "wtr");
  const auto back = read_all(reader);
  ASSERT_EQ(back.size(), events.size());
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(back[i], events[i]) << "event " << i;
  }
  EXPECT_TRUE(reader.findings().empty());
}

TEST(Wtr, PreservesNegativeZeroBits) {
  ScopedDir dir(unique_path("wtr"));
  obs::TraceEvent ev;
  ev.time = -0.0;
  ev.name = "tick";
  write_capture(dir.path, {ev}, obs::TraceFormat::kWtr);
  obs::TraceReader reader(dir.path);
  const auto back = read_all(reader);
  ASSERT_EQ(back.size(), 1u);
  EXPECT_TRUE(std::signbit(back[0].time));
}

TEST(Wtr, RotationSplitsSegmentsAndReaderStitchesThem) {
  ScopedDir dir(unique_path("wtr"));
  const auto events = flow_events(400);
  // Tiny segments: rotation lands mid-flow many times over.
  write_capture(dir.path, events, obs::TraceFormat::kWtr, 4096);

  std::size_t segments = 0;
  for (const auto& e : fs::directory_iterator(dir.path)) {
    (void)e;
    ++segments;
  }
  EXPECT_GT(segments, 3u);

  obs::TraceReader reader(dir.path);
  const auto back = read_all(reader);
  EXPECT_EQ(back, events);
  EXPECT_TRUE(reader.findings().empty());
  EXPECT_EQ(reader.segments().size(), segments);
}

TEST(Wtr, TruncatedTailIsAFindingNotAnError) {
  ScopedDir dir(unique_path("wtr"));
  const auto events = flow_events(200);
  write_capture(dir.path, events, obs::TraceFormat::kWtr, 4096);

  // Chop the final segment mid-record: everything before the cut must
  // still parse, the tail becomes a structured finding.
  std::string last;
  for (const auto& e : fs::directory_iterator(dir.path)) {
    const std::string p = e.path().string();
    if (last.empty() || p > last) last = p;
  }
  const auto size = fs::file_size(last);
  ASSERT_GT(size, 16u);
  fs::resize_file(last, size - 9);

  obs::TraceReader reader(dir.path);
  const auto back = read_all(reader);
  EXPECT_LT(back.size(), events.size());
  EXPECT_GT(back.size(), 0u);
  ASSERT_FALSE(reader.findings().empty());
  EXPECT_NE(reader.findings()[0].find("truncated"), std::string::npos)
      << reader.findings()[0];
  // The prefix that did parse is intact.
  for (std::size_t i = 0; i < back.size(); ++i) EXPECT_EQ(back[i], events[i]);
}

TEST(Wtr, CorruptedByteTripsTheCrc) {
  ScopedDir dir(unique_path("wtr"));
  write_capture(dir.path, flow_events(100), obs::TraceFormat::kWtr);
  const std::string seg = dir.path + "/trace.wtr.000";
  std::string bytes = slurp(seg);
  bytes[bytes.size() / 2] ^= 0x40;  // flip one bit mid-stream
  std::ofstream(seg, std::ios::binary | std::ios::trunc) << bytes;

  obs::TraceReader reader(dir.path);
  read_all(reader);
  ASSERT_FALSE(reader.findings().empty());
}

TEST(Wtr, EmptyCaptureReadsCleanly) {
  ScopedDir dir(unique_path("wtr"));
  write_capture(dir.path, {}, obs::TraceFormat::kWtr);
  obs::TraceReader reader(dir.path);
  EXPECT_TRUE(read_all(reader).empty());
  EXPECT_TRUE(reader.findings().empty());
  ASSERT_EQ(reader.segments().size(), 1u);
  EXPECT_TRUE(reader.segments()[0].complete);
}

// ---------------------------------------------------------------------------
// JSONL reading through the same interface

TEST(JsonlReader, RoundTripAndFormatTag) {
  const std::string path = unique_path("trace.jsonl");
  auto events = flow_events(20);
  for (obs::TraceEvent& ev : nasty_events()) events.push_back(std::move(ev));
  {
    std::ofstream out(path, std::ios::binary);
    obs::write_jsonl(events, out);
  }
  obs::TraceReader reader(path);
  EXPECT_STREQ(reader.format(), "jsonl");
  EXPECT_EQ(read_all(reader), jsonl_canonical(events));
  EXPECT_TRUE(reader.findings().empty());
  fs::remove(path);
}

TEST(JsonlReader, TruncatedFinalRecordIsAFinding) {
  const std::string path = unique_path("trace.jsonl");
  const auto events = flow_events(4);
  std::string text;
  for (const obs::TraceEvent& ev : events) {
    obs::append_jsonl(ev, text);
    text += '\n';
  }
  // Crash mid-write: the last record is cut in half, no newline.
  text.resize(text.size() - text.size() / 24 - 2);
  std::ofstream(path, std::ios::binary) << text;

  obs::TraceReader reader(path);
  const auto back = read_all(reader);
  EXPECT_LT(back.size(), events.size());
  ASSERT_FALSE(reader.findings().empty());
  EXPECT_NE(reader.findings()[0].find("truncated final record at line "),
            std::string::npos)
      << reader.findings()[0];
  fs::remove(path);
}

TEST(JsonlReader, MidFileGarbageThrowsWithLineNumber) {
  const std::string path = unique_path("trace.jsonl");
  std::string text;
  obs::append_jsonl(flow_events(1)[0], text);
  text += "\nthis is not json\n";
  obs::append_jsonl(flow_events(1)[0], text);
  text += '\n';
  std::ofstream(path, std::ios::binary) << text;

  obs::TraceReader reader(path);
  obs::TraceEvent ev;
  ASSERT_TRUE(reader.next(ev));
  try {
    reader.next(ev);
    FAIL() << "expected a parse error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("line 2:"), std::string::npos)
        << e.what();
  }
  fs::remove(path);
}

TEST(JsonlReader, EmptyFileIsAnEmptyCapture) {
  const std::string path = unique_path("trace.jsonl");
  std::ofstream(path, std::ios::binary).flush();
  obs::TraceReader reader(path);
  EXPECT_TRUE(read_all(reader).empty());
  EXPECT_TRUE(reader.findings().empty());
  fs::remove(path);
}

TEST(TraceReader, MissingAndEmptyDirsThrow) {
  EXPECT_THROW(obs::TraceReader("/nonexistent/nowhere"), std::runtime_error);
  ScopedDir dir(unique_path("empty"));
  fs::create_directories(dir.path);
  EXPECT_THROW(obs::TraceReader(dir.path), std::runtime_error);
}

// ---------------------------------------------------------------------------
// Streaming sinks

TEST(StreamingFileSink, JsonlStreamIsByteIdenticalToBatchExport) {
  ScopedDir dir(unique_path("jsonl"));
  const auto events = flow_events(100);
  write_capture(dir.path, events, obs::TraceFormat::kJsonl);

  std::ostringstream batch;
  obs::write_jsonl(events, batch);
  EXPECT_EQ(slurp(dir.path + "/trace.jsonl.000"), batch.str());
}

TEST(StreamingFileSink, TeeFeedsRingAndFileTheSameEvents) {
  ScopedDir dir(unique_path("tee"));
  const auto events = flow_events(60);
  obs::RingBufferSink ring(1 << 12);
  {
    obs::StreamSinkConfig cfg;
    cfg.directory = dir.path;
    cfg.format = obs::TraceFormat::kJsonl;
    obs::StreamingFileSink stream(cfg);
    obs::TeeSink tee(ring, stream);
    for (const obs::TraceEvent& ev : events) tee.accept(ev);
    ASSERT_TRUE(stream.close());
  }
  std::ostringstream from_ring;
  obs::write_jsonl(ring.events(), from_ring);
  EXPECT_EQ(slurp(dir.path + "/trace.jsonl.000"), from_ring.str());
}

TEST(StreamingFileSink, ReportsGaugesAndCounts) {
  ScopedDir dir(unique_path("wtr"));
  obs::StreamSinkConfig cfg;
  cfg.directory = dir.path;
  obs::StreamingFileSink sink(cfg);
  obs::MetricsRegistry registry;
  sink.register_metrics(registry);
  for (const obs::TraceEvent& ev : flow_events(10)) sink.accept(ev);
  ASSERT_TRUE(sink.close());
  EXPECT_EQ(sink.events(), 30u);
  EXPECT_EQ(sink.segments(), 1u);
  std::ostringstream snap;
  registry.write_json(snap);
  EXPECT_NE(snap.str().find("trace.events"), std::string::npos);
}

TEST(StreamingFileSink, FailureIsStickyAndReported) {
  obs::StreamSinkConfig cfg;
  cfg.directory = "/proc/definitely/not/writable";
  obs::StreamingFileSink sink(cfg);
  for (const obs::TraceEvent& ev : flow_events(2)) sink.accept(ev);
  EXPECT_FALSE(sink.close());
  EXPECT_FALSE(sink.ok());
  EXPECT_FALSE(sink.error().empty());
}

// ---------------------------------------------------------------------------
// Incremental analysis == batch analysis

TEST(Incremental, StreamingFlowsMatchBatchAcrossRotation) {
  ScopedDir dir(unique_path("wtr"));
  const auto events = flow_events(300);
  write_capture(dir.path, events, obs::TraceFormat::kWtr, 4096);

  const std::vector<obs::analyze::Flow> batch =
      obs::analyze::reconstruct_flows(events);

  std::vector<obs::analyze::Flow> streamed;
  obs::analyze::FlowCollector collector(
      [&streamed](obs::analyze::Flow& f) { streamed.push_back(std::move(f)); },
      {/*retire_lag=*/2.0});
  obs::TraceReader reader(dir.path);
  obs::TraceEvent ev;
  std::size_t max_live = 0;
  while (reader.next(ev)) {
    collector.feed(ev);
    max_live = std::max(max_live, collector.live());
  }
  collector.finish();

  EXPECT_EQ(streamed, batch);
  EXPECT_EQ(collector.flows_seen(), 300u);
  // Bounded memory: the live window tracks the retire lag, not the trace.
  EXPECT_LT(max_live, 16u);
}

TEST(Incremental, StreamingCheckMatchesBatchVerdict) {
  auto events = flow_events(50);
  // Orphan delivery (flow never sent).
  obs::TraceEvent orphan{900.0, 3, obs::Category::kVirtual, 'i', "deliver",
                         9001, {}};
  events.push_back(orphan);
  // A send that never delivers.
  obs::TraceEvent lost{901.0, 4, obs::Category::kVirtual, 'i', "send", 9002,
                       {{"dst", std::int64_t{5}},
                        {"size", 1.0},
                        {"hops", std::uint64_t{1}}}};
  events.push_back(lost);
  // One clean collective and one that never completes.
  events.push_back({902.0, 0, obs::Category::kCollective, 'B', "reduce", 9100,
                    {}});
  events.push_back({903.0, 0, obs::Category::kCollective, 'E', "reduce", 9100,
                    {}});
  events.push_back({904.0, 0, obs::Category::kCollective, 'B', "barrier",
                    9101, {}});

  const obs::analyze::CheckReport batch = obs::analyze::check_trace(events);

  obs::analyze::StreamCheckOptions options;
  options.retire_lag = 8.0;
  obs::analyze::StreamingChecker checker(options);
  for (const obs::TraceEvent& ev : events) checker.feed(ev);
  const obs::analyze::CheckReport streamed = checker.finish();

  EXPECT_EQ(streamed.flows_checked, batch.flows_checked);
  EXPECT_EQ(streamed.collectives_checked, batch.collectives_checked);
  auto sorted = [](std::vector<std::string> v) {
    std::sort(v.begin(), v.end());
    return v;
  };
  EXPECT_EQ(sorted(streamed.issues), sorted(batch.issues));
  EXPECT_FALSE(streamed.ok());
}

TEST(Incremental, StreamingMembershipMatchesBatchFindings) {
  // A membership stream with one clean adoption, one adoption whose
  // vacated cell is never re-bound (dark cell), and repair churn after the
  // reconciliation deadline. check_membership (batch) and the
  // StreamingChecker share MembershipLedger, so the findings must be
  // byte-identical.
  using obs::Category;
  std::vector<obs::TraceEvent> events;
  events.push_back({10.0, 3, Category::kReliability, 'i', "fd.defect", 0,
                    {{"bound", 50.0}}});
  events.push_back({20.0, 7, Category::kReliability, 'i', "fd.adopt", 0,
                    {{"bound", 50.0},
                     {"row", 1.0},
                     {"col", 2.0},
                     {"from_row", 0.0},
                     {"from_col", 3.0},
                     {"last", 1.0}}});
  events.push_back({25.0, 11, Category::kReliability, 'i', "fd.adopt_accept",
                    0,
                    {{"node", 7.0}, {"row", 1.0}, {"col", 2.0}}});
  events.push_back({30.0, 9, Category::kReliability, 'i', "fd.adopt", 0,
                    {{"bound", 50.0},
                     {"row", 2.0},
                     {"col", 2.0},
                     {"from_row", 3.0},
                     {"from_col", 3.0},
                     {"last", 0.0}}});
  events.push_back({31.0, 12, Category::kReliability, 'i', "fd.adopt_accept",
                    0,
                    {{"node", 9.0}, {"row", 2.0}, {"col", 2.0}}});
  // Churn 130s after the last disturbance (t=30) outlives the 50s bound.
  events.push_back({160.0, 5, Category::kReliability, 'i', "fd.roster_heal",
                    0, {}});

  const obs::analyze::CheckReport batch =
      obs::analyze::check_membership(events);
  ASSERT_EQ(batch.issues.size(), 2u);  // dark cell + late churn

  obs::analyze::StreamingChecker checker{obs::analyze::StreamCheckOptions{}};
  for (const obs::TraceEvent& ev : events) checker.feed(ev);
  const obs::analyze::CheckReport streamed = checker.finish();
  auto sorted = [](std::vector<std::string> v) {
    std::sort(v.begin(), v.end());
    return v;
  };
  EXPECT_EQ(sorted(streamed.issues), sorted(batch.issues));
  EXPECT_FALSE(streamed.ok());
}

// ---------------------------------------------------------------------------
// wsn-inspect: convert, info, streaming analyses, error surfaces

class TracePipelineCli : public ::testing::Test {
 protected:
  int run(std::vector<std::string> args) {
    out_.str("");
    err_.str("");
    return obs::analyze::run_inspect(args, out_, err_);
  }
  std::ostringstream out_;
  std::ostringstream err_;
};

TEST_F(TracePipelineCli, ConvertWtrToJsonlIsByteIdenticalToDirectExport) {
  ScopedDir dir(unique_path("wtr"));
  auto events = flow_events(120);
  for (obs::TraceEvent& ev : nasty_events()) events.push_back(std::move(ev));
  write_capture(dir.path, events, obs::TraceFormat::kWtr, 8192);

  std::ostringstream direct;
  obs::write_jsonl(events, direct);

  const std::string converted = unique_path("converted.jsonl");
  ASSERT_EQ(run({"convert", dir.path, "--out", converted}), 0) << err_.str();
  EXPECT_EQ(slurp(converted), direct.str());

  // And back: jsonl -> wtr -> jsonl is a fixed point.
  ScopedDir dir2(unique_path("wtr2"));
  ASSERT_EQ(run({"convert", converted, "--out", dir2.path, "--format", "wtr"}),
            0)
      << err_.str();
  const std::string again = unique_path("again.jsonl");
  ASSERT_EQ(run({"convert", dir2.path, "--out", again}), 0) << err_.str();
  EXPECT_EQ(slurp(again), direct.str());
  fs::remove(converted);
  fs::remove(again);
}

TEST_F(TracePipelineCli, InfoSummarizesSegments) {
  ScopedDir dir(unique_path("wtr"));
  write_capture(dir.path, flow_events(100), obs::TraceFormat::kWtr, 4096);
  ASSERT_EQ(run({"info", dir.path}), 0) << err_.str();
  EXPECT_NE(out_.str().find("format    : wtr"), std::string::npos)
      << out_.str();
  EXPECT_NE(out_.str().find("events    : 300"), std::string::npos)
      << out_.str();
  EXPECT_NE(out_.str().find("trace.wtr.000"), std::string::npos);
}

TEST_F(TracePipelineCli, CheckRunsStreamingOverSegmentsAndPasses) {
  ScopedDir dir(unique_path("wtr"));
  write_capture(dir.path, flow_events(200), obs::TraceFormat::kWtr, 4096);
  ASSERT_EQ(run({"check", dir.path}), 0) << out_.str() << err_.str();
  EXPECT_NE(out_.str().find("all invariants hold"), std::string::npos)
      << out_.str();
  EXPECT_NE(out_.str().find("200 flows"), std::string::npos) << out_.str();
}

TEST_F(TracePipelineCli, CheckFlagsTruncatedCaptureAsFinding) {
  ScopedDir dir(unique_path("wtr"));
  write_capture(dir.path, flow_events(200), obs::TraceFormat::kWtr, 4096);
  std::string last;
  for (const auto& e : fs::directory_iterator(dir.path)) {
    const std::string p = e.path().string();
    if (last.empty() || p > last) last = p;
  }
  fs::resize_file(last, fs::file_size(last) - 7);
  EXPECT_EQ(run({"check", dir.path}), 1);
  EXPECT_NE(out_.str().find("truncated"), std::string::npos) << out_.str();
}

TEST_F(TracePipelineCli, WrongWtrVersionIsAUsageError) {
  ScopedDir dir(unique_path("wtr"));
  write_capture(dir.path, flow_events(5), obs::TraceFormat::kWtr);
  const std::string seg = dir.path + "/trace.wtr.000";
  std::string bytes = slurp(seg);
  bytes[4] = 2;  // u16le version field right after the magic
  std::ofstream(seg, std::ios::binary | std::ios::trunc) << bytes;
  EXPECT_EQ(run({"info", dir.path}), 2);
  EXPECT_NE(err_.str().find("unsupported wtr version 2"), std::string::npos)
      << err_.str();
}

TEST_F(TracePipelineCli, LoadErrorsCarryLineNumbers) {
  const std::string path = unique_path("bad.jsonl");
  std::string text;
  obs::append_jsonl(flow_events(1)[0], text);
  text += "\n{\"oops\": broken}\n";
  obs::append_jsonl(flow_events(1)[0], text);
  text += '\n';
  std::ofstream(path, std::ios::binary) << text;
  EXPECT_EQ(run({"flows", path}), 2);
  EXPECT_NE(err_.str().find("line 2:"), std::string::npos) << err_.str();
  fs::remove(path);
}

TEST_F(TracePipelineCli, FlowsAndHistogramStreamTheSameNumbersAsBatch) {
  const auto events = flow_events(64);
  const std::string jsonl = unique_path("trace.jsonl");
  {
    std::ofstream out(jsonl, std::ios::binary);
    obs::write_jsonl(events, out);
  }
  ScopedDir dir(unique_path("wtr"));
  write_capture(dir.path, events, obs::TraceFormat::kWtr, 4096);

  ASSERT_EQ(run({"flows", jsonl, "--limit", "5"}), 0);
  const std::string from_jsonl = out_.str();
  ASSERT_EQ(run({"flows", dir.path, "--limit", "5"}), 0);
  EXPECT_EQ(out_.str(), from_jsonl);
  EXPECT_NE(from_jsonl.find("5 of 64 flows"), std::string::npos)
      << from_jsonl;

  ASSERT_EQ(run({"histogram", jsonl}), 0);
  const std::string hist_jsonl = out_.str();
  ASSERT_EQ(run({"histogram", dir.path}), 0);
  EXPECT_EQ(out_.str(), hist_jsonl);
  fs::remove(jsonl);
}

}  // namespace
