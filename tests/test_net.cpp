// Physical substrate: geometry, deployments, unit-disk graph, energy
// ledger, link layer.
#include <gtest/gtest.h>

#include "net/deployment.h"
#include "net/energy.h"
#include "net/geometry.h"
#include "net/link_layer.h"
#include "net/network_graph.h"
#include "net/radio.h"
#include "net/topology_factory.h"
#include "sim/simulator.h"

namespace wsn::net {
namespace {

TEST(Geometry, Distances) {
  EXPECT_DOUBLE_EQ(distance({0, 0}, {3, 4}), 5.0);
  EXPECT_DOUBLE_EQ(distance_sq({1, 1}, {2, 2}), 2.0);
}

TEST(Geometry, RectContainsHalfOpen) {
  const Rect r{0, 0, 10, 10};
  EXPECT_TRUE(r.contains({0, 0}));
  EXPECT_TRUE(r.contains({9.999, 5}));
  EXPECT_FALSE(r.contains({10, 5}));
  EXPECT_FALSE(r.contains({-0.1, 5}));
  EXPECT_EQ(r.center().x, 5.0);
}

TEST(Deployment, UniformStaysInTerrain) {
  sim::Rng rng(1);
  const auto pts = deploy({DeploymentKind::kUniformRandom, 500,
                           square_terrain(100.0)},
                          rng);
  ASSERT_EQ(pts.size(), 500u);
  for (const Point& p : pts) {
    EXPECT_TRUE(square_terrain(100.0).contains(p));
  }
}

TEST(Deployment, OnePerCellGuaranteesCoverage) {
  sim::Rng rng(2);
  DeploymentConfig cfg;
  cfg.kind = DeploymentKind::kOnePerCellPlus;
  cfg.node_count = 100;
  cfg.terrain = square_terrain(80.0);
  cfg.cells_per_side = 8;
  const auto pts = deploy(cfg, rng);
  EXPECT_TRUE(covers_all_cells(pts, cfg.terrain, 8));
}

TEST(Deployment, OnePerCellRejectsTooFewNodes) {
  sim::Rng rng(3);
  DeploymentConfig cfg;
  cfg.kind = DeploymentKind::kOnePerCellPlus;
  cfg.node_count = 10;
  cfg.terrain = square_terrain(10.0);
  cfg.cells_per_side = 4;  // needs >= 16
  EXPECT_THROW(deploy(cfg, rng), std::invalid_argument);
}

// ---- TopologyFactory: diversified per-cell shapes -----------------------

TEST(TopologyFactory, NamesRoundTrip) {
  const TopologyKind kinds[] = {TopologyKind::kGrid, TopologyKind::kRing,
                                TopologyKind::kLine, TopologyKind::kMesh,
                                TopologyKind::kClique};
  for (const TopologyKind k : kinds) {
    TopologyKind parsed{};
    ASSERT_TRUE(parse_topology(to_string(k), parsed)) << to_string(k);
    EXPECT_EQ(parsed, k);
  }
  TopologyKind out = TopologyKind::kRing;
  EXPECT_FALSE(parse_topology("torus", out));
  EXPECT_EQ(out, TopologyKind::kRing);  // failure leaves `out` untouched
}

TEST(TopologyFactory, EveryShapeCoversAllCellsAndStaysInTerrain) {
  const Rect terrain = square_terrain(40.0);
  const TopologyKind kinds[] = {TopologyKind::kRing, TopologyKind::kLine,
                                TopologyKind::kMesh, TopologyKind::kClique};
  for (const TopologyKind k : kinds) {
    sim::Rng rng(11);
    const auto pts = deploy_topology(k, 4, 60, terrain, rng);
    ASSERT_EQ(pts.size(), 60u) << to_string(k);
    for (const Point& p : pts) {
      EXPECT_TRUE(terrain.contains(p)) << to_string(k);
    }
    EXPECT_TRUE(covers_all_cells(pts, terrain, 4)) << to_string(k);
  }
}

TEST(TopologyFactory, GridDelegatesToOnePerCellPlusByteForByte) {
  const Rect terrain = square_terrain(40.0);
  sim::Rng factory_rng(17);
  const auto factory_pts =
      deploy_topology(TopologyKind::kGrid, 4, 60, terrain, factory_rng);

  sim::Rng classic_rng(17);
  DeploymentConfig cfg;
  cfg.kind = DeploymentKind::kOnePerCellPlus;
  cfg.node_count = 60;
  cfg.terrain = terrain;
  cfg.cells_per_side = 4;
  const auto classic_pts = deploy(cfg, classic_rng);

  // Same positions AND same RNG consumption: seeded runs that switch to the
  // factory replay byte-identically on the default topology.
  ASSERT_EQ(factory_pts.size(), classic_pts.size());
  for (std::size_t i = 0; i < factory_pts.size(); ++i) {
    EXPECT_DOUBLE_EQ(factory_pts[i].x, classic_pts[i].x) << i;
    EXPECT_DOUBLE_EQ(factory_pts[i].y, classic_pts[i].y) << i;
  }
  EXPECT_EQ(factory_rng.below(1u << 30), classic_rng.below(1u << 30));
}

TEST(TopologyFactory, DeterministicForFixedSeed) {
  const Rect terrain = square_terrain(40.0);
  for (const TopologyKind k :
       {TopologyKind::kRing, TopologyKind::kMesh, TopologyKind::kClique}) {
    sim::Rng a(23), b(23);
    const auto pa = deploy_topology(k, 4, 60, terrain, a);
    const auto pb = deploy_topology(k, 4, 60, terrain, b);
    ASSERT_EQ(pa.size(), pb.size());
    for (std::size_t i = 0; i < pa.size(); ++i) {
      EXPECT_DOUBLE_EQ(pa[i].x, pb[i].x) << to_string(k) << " " << i;
      EXPECT_DOUBLE_EQ(pa[i].y, pb[i].y) << to_string(k) << " " << i;
    }
  }
}

TEST(TopologyFactory, RejectsTooFewNodes) {
  const Rect terrain = square_terrain(10.0);
  sim::Rng rng(3);
  EXPECT_THROW(deploy_topology(TopologyKind::kRing, 4, 10, terrain, rng),
               std::invalid_argument);
}

TEST(Deployment, PerturbedGridAndClusteredStayInside) {
  sim::Rng rng(4);
  DeploymentConfig cfg;
  cfg.terrain = square_terrain(50.0);
  cfg.node_count = 300;
  cfg.kind = DeploymentKind::kPerturbedGrid;
  cfg.cells_per_side = 10;
  for (const Point& p : deploy(cfg, rng)) {
    EXPECT_TRUE(cfg.terrain.contains(p));
  }
  cfg.kind = DeploymentKind::kClustered;
  for (const Point& p : deploy(cfg, rng)) {
    EXPECT_TRUE(cfg.terrain.contains(p));
  }
}

TEST(Deployment, CellOfMapsCorners) {
  const Rect t = square_terrain(100.0);
  EXPECT_EQ(cell_of({1, 1}, t, 4), 0u);           // NW corner -> cell (0,0)
  EXPECT_EQ(cell_of({99, 1}, t, 4), 3u);          // NE in x -> col 3
  EXPECT_EQ(cell_of({1, 99}, t, 4), 12u);         // south -> row 3
  EXPECT_EQ(cell_of({99, 99}, t, 4), 15u);
  EXPECT_EQ(cell_of({26, 51}, t, 4), 9u);         // row 2, col 1
}

TEST(Deployment, OccupancySumsToNodeCount) {
  sim::Rng rng(5);
  const Rect t = square_terrain(10.0);
  const auto pts = deploy({DeploymentKind::kUniformRandom, 200, t}, rng);
  const auto occ = cell_occupancy(pts, t, 5);
  std::size_t sum = 0;
  for (std::size_t c : occ) sum += c;
  EXPECT_EQ(sum, 200u);
}

TEST(NetworkGraph, EdgesRespectRange) {
  // Three collinear points, 1 apart; range 1.5 connects only neighbors.
  NetworkGraph g({{0, 0}, {1, 0}, {2, 0}}, 1.5);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 2));
  EXPECT_FALSE(g.has_edge(0, 2));
  EXPECT_EQ(g.edge_count(), 2u);
  EXPECT_EQ(g.degree(1), 2u);
}

TEST(NetworkGraph, SymmetricAdjacency) {
  sim::Rng rng(6);
  const auto pts = deploy({DeploymentKind::kUniformRandom, 150,
                           square_terrain(10.0)},
                          rng);
  NetworkGraph g(pts, 1.6);
  for (NodeId i = 0; i < g.node_count(); ++i) {
    for (NodeId j : g.neighbors(i)) {
      EXPECT_TRUE(g.has_edge(j, i));
      EXPECT_LE(distance(g.position(i), g.position(j)), 1.6);
    }
  }
}

TEST(NetworkGraph, BruteForceCrossCheck) {
  sim::Rng rng(7);
  const auto pts = deploy({DeploymentKind::kUniformRandom, 80,
                           square_terrain(5.0)},
                          rng);
  const double range = 1.1;
  NetworkGraph g(pts, range);
  std::size_t expected = 0;
  for (std::size_t i = 0; i < pts.size(); ++i) {
    for (std::size_t j = i + 1; j < pts.size(); ++j) {
      if (distance(pts[i], pts[j]) <= range) {
        ++expected;
        EXPECT_TRUE(g.has_edge(static_cast<NodeId>(i), static_cast<NodeId>(j)));
      }
    }
  }
  EXPECT_EQ(g.edge_count(), expected);
}

TEST(NetworkGraph, HopDistancesAndPath) {
  // 5-node line.
  NetworkGraph g({{0, 0}, {1, 0}, {2, 0}, {3, 0}, {4, 0}}, 1.1);
  const auto d = g.hop_distances(0);
  EXPECT_EQ(d[4], 4u);
  const auto path = g.shortest_path(0, 4);
  ASSERT_EQ(path.size(), 5u);
  EXPECT_EQ(path.front(), 0u);
  EXPECT_EQ(path.back(), 4u);
  EXPECT_TRUE(g.connected());
}

TEST(NetworkGraph, DisconnectedDetection) {
  NetworkGraph g({{0, 0}, {1, 0}, {10, 0}, {11, 0}}, 1.5);
  EXPECT_FALSE(g.connected());
  EXPECT_TRUE(g.shortest_path(0, 2).empty());
  const auto d = g.hop_distances(0);
  EXPECT_EQ(d[2], NetworkGraph::kUnreachable);
}

TEST(NetworkGraph, InducedConnectivity) {
  //  0-1-2 chain plus isolated-from-subset node 3 adjacent only to 2.
  NetworkGraph g({{0, 0}, {1, 0}, {2, 0}, {3, 0}}, 1.1);
  const std::vector<NodeId> chain{0, 1, 2};
  EXPECT_TRUE(g.induced_connected(chain));
  const std::vector<NodeId> split{0, 2};  // 1 removed: no edge 0-2
  EXPECT_FALSE(g.induced_connected(split));
}

TEST(EnergyLedger, ChargesAndCategories) {
  EnergyLedger ledger(3);
  ledger.charge(0, EnergyUse::kTx, 2.0);
  ledger.charge(0, EnergyUse::kRx, 1.0);
  ledger.charge(1, EnergyUse::kCompute, 4.0);
  EXPECT_DOUBLE_EQ(ledger.spent(0), 3.0);
  EXPECT_DOUBLE_EQ(ledger.spent(0, EnergyUse::kTx), 2.0);
  EXPECT_DOUBLE_EQ(ledger.total(), 7.0);
  EXPECT_DOUBLE_EQ(ledger.total(EnergyUse::kCompute), 4.0);
  EXPECT_EQ(ledger.hottest(), 1u);
  EXPECT_THROW(ledger.charge(0, EnergyUse::kTx, -1.0), std::invalid_argument);
}

TEST(EnergyLedger, BudgetAndDepletion) {
  EnergyLedger ledger(2, 5.0);
  ledger.charge(0, EnergyUse::kTx, 4.0);
  EXPECT_FALSE(ledger.depleted(0));
  EXPECT_DOUBLE_EQ(ledger.remaining(0), 1.0);
  ledger.charge(0, EnergyUse::kTx, 1.5);
  EXPECT_TRUE(ledger.depleted(0));
  EXPECT_FALSE(ledger.depleted(1));
  ledger.reset();
  EXPECT_FALSE(ledger.depleted(0));
  EXPECT_DOUBLE_EQ(ledger.total(), 0.0);
}

TEST(EnergyLedger, RemainingClampsAtZero) {
  EnergyLedger ledger(1, 5.0);
  ledger.charge(0, EnergyUse::kTx, 7.5);  // overshoot by one in-flight frame
  EXPECT_TRUE(ledger.depleted(0));
  EXPECT_DOUBLE_EQ(ledger.remaining(0), 0.0);  // never a negative battery
  EXPECT_DOUBLE_EQ(ledger.spent(0), 7.5);      // the overshoot is still paid
}

TEST(EnergyLedger, DepletionCallbackFiresExactlyOnce) {
  EnergyLedger ledger(2, 3.0);
  std::vector<NodeId> fired;
  ledger.set_on_depleted([&](NodeId n) { fired.push_back(n); });
  ledger.charge(0, EnergyUse::kTx, 2.0);
  EXPECT_TRUE(fired.empty());
  ledger.charge(0, EnergyUse::kTx, 1.0);  // crossing: spent == budget
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0], 0u);
  // Charges keep accumulating after depletion without re-firing the hook.
  ledger.charge(0, EnergyUse::kRx, 4.0);
  EXPECT_EQ(fired.size(), 1u);
  EXPECT_DOUBLE_EQ(ledger.spent(0), 7.0);
  EXPECT_EQ(ledger.depleted_count(), 1u);
}

TEST(EnergyLedger, SetBudgetBelowSpendFiresImmediately) {
  EnergyLedger ledger(2);  // infinite default budget
  ledger.charge(1, EnergyUse::kCompute, 10.0);
  std::vector<NodeId> fired;
  ledger.set_on_depleted([&](NodeId n) { fired.push_back(n); });
  ledger.set_budget(1, 4.0);  // already past it: fires from this call
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0], 1u);
  EXPECT_TRUE(ledger.depleted(1));
  EXPECT_FALSE(ledger.depleted(0));  // other node keeps the infinite default
  EXPECT_DOUBLE_EQ(ledger.remaining(0),
                   std::numeric_limits<double>::infinity());
}

TEST(EnergyLedger, BudgetRaiseDoesNotResurrect) {
  EnergyLedger ledger(1, 2.0);
  int fired = 0;
  ledger.set_on_depleted([&](NodeId) { ++fired; });
  ledger.charge(0, EnergyUse::kTx, 2.0);
  EXPECT_EQ(fired, 1);
  ledger.set_budget(0, 100.0);  // latched: dead nodes stay dead
  EXPECT_EQ(ledger.depleted_count(), 1u);
  ledger.charge(0, EnergyUse::kTx, 1.0);
  EXPECT_EQ(fired, 1);  // and the crossing never re-fires
}

TEST(EnergyLedger, PerNodeBudgetsAreIndependent) {
  EnergyLedger ledger(3);
  ledger.set_budget(0, 1.0);
  ledger.set_budget(2, 10.0);
  ledger.charge(0, EnergyUse::kTx, 5.0);
  ledger.charge(1, EnergyUse::kTx, 5.0);
  ledger.charge(2, EnergyUse::kTx, 5.0);
  EXPECT_TRUE(ledger.depleted(0));
  EXPECT_FALSE(ledger.depleted(1));  // untouched node stays infinite
  EXPECT_FALSE(ledger.depleted(2));
  EXPECT_DOUBLE_EQ(ledger.budget(0), 1.0);
  EXPECT_DOUBLE_EQ(ledger.budget(2), 10.0);
  EXPECT_DOUBLE_EQ(ledger.remaining(2), 5.0);
  EXPECT_THROW(ledger.set_budget(1, -1.0), std::invalid_argument);
}

TEST(EnergyLedger, ResetClearsCrossings) {
  EnergyLedger ledger(1, 2.0);
  int fired = 0;
  ledger.set_on_depleted([&](NodeId) { ++fired; });
  ledger.charge(0, EnergyUse::kTx, 3.0);
  EXPECT_EQ(fired, 1);
  ledger.reset();
  EXPECT_EQ(ledger.depleted_count(), 0u);
  ledger.charge(0, EnergyUse::kTx, 3.0);  // a fresh run may cross again
  EXPECT_EQ(fired, 2);
}

class LinkLayerTest : public ::testing::Test {
 protected:
  LinkLayerTest()
      : graph_({{0, 0}, {1, 0}, {2, 0}}, 1.1),
        ledger_(graph_.node_count()),
        link_(sim_, graph_, RadioModel{1.1, 1.0, 1.0, 1.0}, CpuModel{},
              ledger_) {}

  sim::Simulator sim_{1};
  NetworkGraph graph_;
  EnergyLedger ledger_;
  LinkLayer link_;
};

TEST_F(LinkLayerTest, BroadcastReachesNeighborsOnly) {
  std::vector<int> got(3, 0);
  for (NodeId i = 0; i < 3; ++i) {
    link_.set_receiver(i, [&got, i](const Packet&) { ++got[i]; });
  }
  link_.broadcast(1, std::string("hello"), 1.0);
  sim_.run();
  EXPECT_EQ(got, (std::vector<int>{1, 0, 1}));  // node 1 does not hear itself
  // Energy: 1 tx at sender, 1 rx at each neighbor.
  EXPECT_DOUBLE_EQ(ledger_.spent(1, EnergyUse::kTx), 1.0);
  EXPECT_DOUBLE_EQ(ledger_.spent(0, EnergyUse::kRx), 1.0);
  EXPECT_DOUBLE_EQ(ledger_.spent(2, EnergyUse::kRx), 1.0);
  EXPECT_DOUBLE_EQ(ledger_.total(), 3.0);
}

TEST_F(LinkLayerTest, DeliveryLatencyFollowsBandwidth) {
  sim::Time arrival = -1;
  link_.set_receiver(0, [&](const Packet&) { arrival = sim_.now(); });
  link_.broadcast(1, 0, 2.5);  // 2.5 units at B=1
  sim_.run();
  EXPECT_DOUBLE_EQ(arrival, 2.5);
}

TEST_F(LinkLayerTest, UnicastChargesOnlyAddressee) {
  int got = 0;
  link_.set_receiver(2, [&](const Packet& p) {
    ++got;
    EXPECT_EQ(p.sender, 1u);
  });
  link_.unicast(1, 2, 0, 1.0);
  sim_.run();
  EXPECT_EQ(got, 1);
  EXPECT_DOUBLE_EQ(ledger_.spent(0), 0.0);  // bystander pays nothing
  EXPECT_DOUBLE_EQ(ledger_.spent(1, EnergyUse::kTx), 1.0);
  EXPECT_DOUBLE_EQ(ledger_.spent(2, EnergyUse::kRx), 1.0);
}

TEST_F(LinkLayerTest, DeadNodesNeitherSendNorReceive) {
  EnergyLedger ledger(3, 1.0);
  LinkLayer link(sim_, graph_, RadioModel{1.1, 1.0, 1.0, 1.0}, CpuModel{},
                 ledger);
  ledger.charge(0, EnergyUse::kCompute, 2.0);  // deplete node 0
  int got = 0;
  link.set_receiver(0, [&](const Packet&) { ++got; });
  link.set_receiver(2, [&](const Packet&) { ++got; });
  link.broadcast(1, 0, 0.5);
  sim_.run();
  EXPECT_EQ(got, 1);  // only node 2
  EXPECT_EQ(link.counters().get("link.rx_dead"), 1u);
  link.broadcast(0, 0, 0.5);  // dead sender
  sim_.run();
  EXPECT_EQ(link.counters().get("link.tx_dead"), 1u);
}

TEST_F(LinkLayerTest, LossDropsPackets) {
  link_.set_loss_probability(1.0);
  int got = 0;
  link_.set_receiver(0, [&](const Packet&) { ++got; });
  link_.broadcast(1, 0, 1.0);
  sim_.run();
  EXPECT_EQ(got, 0);
  EXPECT_EQ(link_.counters().get("link.lost"), 2u);
}

TEST_F(LinkLayerTest, DistanceLossDropsFringeOnly) {
  // Nodes at distance 1 (0-1, 1-2): with a fringe starting at 1.05 the
  // links are fully reliable; with the fringe at 0.5 they drop often.
  int got = 0;
  link_.set_receiver(0, [&](const Packet&) { ++got; });
  link_.set_distance_loss(net::LinkLayer::sigmoid_fringe(1.05, 1.1));
  for (int i = 0; i < 50; ++i) link_.unicast(1, 0, 0, 1.0);
  sim_.run();
  EXPECT_EQ(got, 50);
  link_.set_distance_loss(net::LinkLayer::sigmoid_fringe(0.2, 1.1));
  got = 0;
  for (int i = 0; i < 200; ++i) link_.unicast(1, 0, 0, 1.0);
  sim_.run();
  EXPECT_LT(got, 150);  // significant fringe loss
  EXPECT_GT(link_.counters().get("link.lost_fringe"), 0u);
}

TEST_F(LinkLayerTest, TxSerializationQueuesBackToBackSends) {
  link_.set_tx_serialization(true);
  std::vector<sim::Time> arrivals;
  link_.set_receiver(0, [&](const Packet&) { arrivals.push_back(sim_.now()); });
  // Three unit packets fired at t=0 from the same radio: with a serialized
  // transmitter they arrive at 1, 2, 3 instead of all at 1.
  for (int i = 0; i < 3; ++i) link_.unicast(1, 0, 0, 1.0);
  sim_.run();
  ASSERT_EQ(arrivals.size(), 3u);
  EXPECT_DOUBLE_EQ(arrivals[0], 1.0);
  EXPECT_DOUBLE_EQ(arrivals[1], 2.0);
  EXPECT_DOUBLE_EQ(arrivals[2], 3.0);
  EXPECT_EQ(link_.counters().get("link.tx_queued"), 2u);
}

TEST_F(LinkLayerTest, TxSerializationOffByDefault) {
  std::vector<sim::Time> arrivals;
  link_.set_receiver(0, [&](const Packet&) { arrivals.push_back(sim_.now()); });
  for (int i = 0; i < 3; ++i) link_.unicast(1, 0, 0, 1.0);
  sim_.run();
  ASSERT_EQ(arrivals.size(), 3u);
  for (sim::Time t : arrivals) EXPECT_DOUBLE_EQ(t, 1.0);
}

TEST_F(LinkLayerTest, ComputeChargesAndReturnsLatency) {
  const sim::Time lat = link_.compute(1, 3.0);
  EXPECT_DOUBLE_EQ(lat, 3.0);
  EXPECT_DOUBLE_EQ(ledger_.spent(1, EnergyUse::kCompute), 3.0);
}

}  // namespace
}  // namespace wsn::net
