// Edge cases and failure-injection behaviors across modules.
#include <gtest/gtest.h>

#include "app/field.h"
#include "app/labeling.h"
#include "app/topographic.h"
#include "bench/bench_common.h"
#include "core/virtual_network.h"
#include "emulation/overlay_network.h"
#include "net/deployment.h"

namespace wsn {
namespace {

TEST(EdgeCases, GridBoundsMergeWithEmpty) {
  app::GridBounds empty;
  app::GridBounds some;
  some.expand({2, 3});
  some.expand({5, 1});
  app::GridBounds merged = empty;
  merged.merge(some);
  EXPECT_EQ(merged, some);
  app::GridBounds merged2 = some;
  merged2.merge(empty);
  EXPECT_EQ(merged2, some);
}

TEST(EdgeCases, DeploymentZeroNodes) {
  sim::Rng rng(1);
  const auto pts = net::deploy(
      {net::DeploymentKind::kUniformRandom, 0, net::square_terrain(10.0)}, rng);
  EXPECT_TRUE(pts.empty());
}

TEST(EdgeCases, DeploymentDegenerateTerrainRejected) {
  sim::Rng rng(2);
  net::DeploymentConfig cfg;
  cfg.node_count = 10;
  cfg.terrain = net::Rect{0, 0, 0, 5};  // zero width
  EXPECT_THROW(net::deploy(cfg, rng), std::invalid_argument);
}

TEST(EdgeCases, ClusteredWithZeroClustersStillWorks) {
  sim::Rng rng(3);
  net::DeploymentConfig cfg;
  cfg.kind = net::DeploymentKind::kClustered;
  cfg.node_count = 50;
  cfg.terrain = net::square_terrain(10.0);
  cfg.cluster_count = 0;  // clamped to 1 internally
  const auto pts = net::deploy(cfg, rng);
  EXPECT_EQ(pts.size(), 50u);
}

TEST(EdgeCases, EmptyNetworkGraph) {
  net::NetworkGraph g({}, 1.0);
  EXPECT_EQ(g.node_count(), 0u);
  EXPECT_TRUE(g.connected());
  EXPECT_EQ(g.edge_count(), 0u);
}

TEST(EdgeCases, SingleNodeGraph) {
  net::NetworkGraph g({{1.0, 1.0}}, 1.0);
  EXPECT_TRUE(g.connected());
  EXPECT_EQ(g.degree(0), 0u);
  EXPECT_EQ(g.shortest_path(0, 0).size(), 1u);
}

TEST(EdgeCases, ZeroRangeGraphRejected) {
  EXPECT_THROW(net::NetworkGraph({{0, 0}}, 0.0), std::invalid_argument);
}

TEST(EdgeCases, TopographicQueryOnMismatchedSidesThrows) {
  sim::Simulator sim(1);
  core::VirtualNetwork vnet(sim, core::GridTopology(4),
                            core::uniform_cost_model());
  const app::FeatureGrid grid(8);
  EXPECT_THROW(app::run_topographic_query(vnet, grid), std::invalid_argument);
}

TEST(EdgeCases, OverlayQueryFailsLoudlyUnderTotalLoss) {
  // With every packet dropped the round cannot complete: the runner throws
  // instead of silently returning a stale or partial result.
  bench::PhysicalStack stack(2, 40, 1.5, 9);
  ASSERT_TRUE(stack.healthy());
  stack.link->set_loss_probability(1.0);
  sim::Rng rng(9);
  const app::FeatureGrid grid = app::random_grid(2, 0.5, rng);
  EXPECT_THROW(app::run_topographic_query(*stack.overlay, grid),
               std::runtime_error);
}

TEST(EdgeCases, TwoByTwoFullPipeline) {
  // The smallest nontrivial grid end to end on the physical stack.
  bench::PhysicalStack stack(2, 24, 1.5, 4);
  ASSERT_TRUE(stack.healthy());
  app::FeatureGrid grid(2);
  grid.set({0, 1}, true);
  grid.set({1, 1}, true);
  const auto outcome = app::run_topographic_query(*stack.overlay, grid);
  ASSERT_EQ(outcome.regions.size(), 1u);
  EXPECT_EQ(outcome.regions[0].area, 2u);
}

TEST(EdgeCases, CostModelZeroEnergyVariant) {
  // Free computation (energy 0) is legal; only negative values are not.
  core::CostModel cost;
  cost.compute_energy_per_op = 0.0;
  cost.validate();
  cost.tx_energy_per_unit = -1.0;
  EXPECT_THROW(cost.validate(), std::invalid_argument);
}

TEST(EdgeCases, VirtualNetworkZeroSizedMessage) {
  sim::Simulator sim(1);
  core::VirtualNetwork vnet(sim, core::GridTopology(4),
                            core::uniform_cost_model());
  sim::Time arrival = -1;
  vnet.set_receiver({0, 3}, [&](const core::VirtualMessage&) {
    arrival = sim.now();
  });
  vnet.send({0, 0}, {0, 3}, 0, 0.0);  // zero units: free and instantaneous
  sim.run();
  EXPECT_DOUBLE_EQ(arrival, 0.0);
  EXPECT_DOUBLE_EQ(vnet.ledger().total(), 0.0);
}

TEST(EdgeCases, LabelingOneByOne) {
  app::FeatureGrid g(1);
  EXPECT_EQ(app::label_regions(g).region_count(), 0u);
  g.set({0, 0}, true);
  const auto l = app::label_regions(g);
  ASSERT_EQ(l.region_count(), 1u);
  EXPECT_EQ(l.regions[0].area, 1u);
}

TEST(EdgeCases, OverlayWithJitteredProtocols) {
  // Protocols started with jitter still produce a working overlay.
  sim::Simulator sim(12);
  const net::Rect terrain = net::square_terrain(4.0);
  net::DeploymentConfig cfg;
  cfg.kind = net::DeploymentKind::kOnePerCellPlus;
  cfg.node_count = 160;
  cfg.terrain = terrain;
  cfg.cells_per_side = 4;
  auto positions = net::deploy(cfg, sim.rng());
  net::NetworkGraph graph(std::move(positions), 1.3);
  net::EnergyLedger ledger(graph.node_count());
  net::LinkLayer link(sim, graph, net::RadioModel{1.3, 1.0, 1.0, 1.0},
                      net::CpuModel{}, ledger);
  emulation::CellMapper mapper(graph, terrain, 4);
  ASSERT_TRUE(mapper.all_cells_occupied());
  ASSERT_TRUE(mapper.all_cells_connected());
  auto emu = emulation::run_topology_emulation(link, mapper, /*jitter=*/3.0);
  auto bind = emulation::run_leader_binding(
      link, mapper, emulation::BindingMetric::kDistanceToCenter, 3.0);
  ASSERT_TRUE(bind.unique_leaders);
  emulation::OverlayNetwork overlay(link, mapper, std::move(emu),
                                    std::move(bind));
  sim::Rng rng(12);
  const app::FeatureGrid grid = app::random_grid(4, 0.5, rng);
  const auto outcome = app::run_topographic_query(overlay, grid);
  EXPECT_EQ(outcome.regions.size(), app::label_regions(grid).region_count());
}

}  // namespace
}  // namespace wsn
