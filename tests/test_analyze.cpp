// Offline trace analysis toolkit: flow reconstruction, critical paths,
// energy attribution, the invariant checker, bench-baseline comparison, the
// histogram instrument, and the wsn-inspect CLI driver.
//
// The analysis pipeline is exercised end-to-end against real captures: a
// simulated run emits through the tracer into a ring buffer, the events are
// round-tripped through JSONL, and the offline code must recover exactly
// what the live ledgers and counters saw.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <variant>
#include <vector>

#include "analysis/metrics.h"
#include "bench/bench_common.h"
#include "core/primitives.h"
#include "core/virtual_network.h"
#include "obs/analyze/bench_compare.h"
#include "obs/analyze/check.h"
#include "obs/analyze/cli.h"
#include "obs/analyze/energy.h"
#include "obs/analyze/flows.h"
#include "obs/analyze/json_reader.h"
#include "obs/export.h"
#include "obs/histogram.h"
#include "obs/metrics_registry.h"
#include "obs/sinks.h"
#include "obs/trace.h"
#include "sim/simulator.h"

namespace {

using namespace wsn;
using namespace wsn::obs::analyze;

/// Captured virtual-layer run: every node sends one unit message to the
/// grid origin, optionally with transmitter serialization (queueing).
std::vector<obs::TraceEvent> capture_all_to_origin(std::size_t side,
                                                   core::Congestion congestion) {
  obs::RingBufferSink sink(1 << 16);
  sim::Simulator sim(1);
  core::VirtualNetwork vnet(sim, core::GridTopology(side),
                            core::uniform_cost_model(),
                            core::LeaderPlacement::kNorthWest, congestion);
  {
    obs::ScopedTrace trace(sink);
    for (const auto& c : vnet.grid().all_coords()) {
      vnet.send(c, {0, 0}, std::monostate{}, 1.0);
    }
    sim.run();
  }
  return sink.events();
}

// ---------------------------------------------------------------------------
// Histogram instrument

TEST(Histogram, PercentilesOnUniformData) {
  obs::Histogram h(0.0, 100.0, 100);
  for (int i = 0; i < 100; ++i) h.add(static_cast<double>(i) + 0.5);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_NEAR(h.mean(), 50.0, 1e-9);
  // Bucket i holds exactly one sample; interpolation lands mid-bucket-edge.
  EXPECT_NEAR(h.p50(), 50.0, 1.0);
  EXPECT_NEAR(h.p95(), 95.0, 1.0);
  EXPECT_NEAR(h.p99(), 99.0, 1.0);
  EXPECT_NEAR(h.percentile(1.0), 100.0, 1.0);
}

TEST(Histogram, UnderflowAndOverflowTracked) {
  obs::Histogram h(10.0, 20.0, 4);
  h.add(5.0);    // underflow
  h.add(25.0);   // overflow
  h.add(12.0);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_DOUBLE_EQ(h.min(), 5.0);
  EXPECT_DOUBLE_EQ(h.max(), 25.0);
  // p100 clamps to hi even though max() is beyond it.
  EXPECT_DOUBLE_EQ(h.percentile(1.0), 20.0);
}

TEST(Histogram, RejectsDegenerateRange) {
  EXPECT_THROW(obs::Histogram(1.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(obs::Histogram(2.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(obs::Histogram(0.0, 1.0, 0), std::invalid_argument);
}

TEST(Histogram, RegistrySnapshotCarriesPercentiles) {
  obs::Histogram h(0.0, 10.0, 10);
  for (int i = 0; i < 10; ++i) h.add(static_cast<double>(i) + 0.5);
  obs::MetricsRegistry registry;
  registry.add_histogram("app.latency", &h);
  EXPECT_EQ(&registry.histogram("app.latency"), &h);
  EXPECT_THROW(registry.histogram("nope"), std::out_of_range);

  const JsonValue doc = parse_json(registry.to_json());
  const JsonValue* hist = doc.find("app.latency");
  ASSERT_NE(hist, nullptr);
  EXPECT_DOUBLE_EQ(hist->find("count")->number(), 10.0);
  EXPECT_NEAR(hist->find("p50")->number(), 5.0, 1.0);
  EXPECT_NEAR(hist->find("p99")->number(), 9.9, 1.0);
  ASSERT_TRUE(hist->find("buckets")->is_array());
  EXPECT_EQ(hist->find("buckets")->array().size(), 10u);
}

// ---------------------------------------------------------------------------
// JSON reader

TEST(JsonReader, ParsesNestedDocument) {
  const JsonValue v = parse_json(
      R"({"a": [1, -2, 3.5, "x"], "b": {"c": true, "d": null}})");
  const JsonArray& a = v.find("a")->array();
  ASSERT_EQ(a.size(), 4u);
  EXPECT_TRUE(std::holds_alternative<std::uint64_t>(a[0].v));
  EXPECT_TRUE(std::holds_alternative<std::int64_t>(a[1].v));
  EXPECT_TRUE(std::holds_alternative<double>(a[2].v));
  EXPECT_EQ(a[3].string(), "x");
  EXPECT_TRUE(v.find("b")->find("c")->is_bool());
  EXPECT_TRUE(v.find("b")->find("d")->is_null());
  EXPECT_EQ(v.find("missing"), nullptr);
}

TEST(JsonReader, RejectsMalformedInput) {
  EXPECT_THROW(parse_json("{\"a\": 1"), std::runtime_error);
  EXPECT_THROW(parse_json("{\"a\": 1} extra"), std::runtime_error);
  EXPECT_THROW(parse_json("{'a': 1}"), std::runtime_error);
  EXPECT_THROW(parse_json(""), std::runtime_error);
  EXPECT_THROW(parse_json("{\"a\": tru}"), std::runtime_error);
}

// ---------------------------------------------------------------------------
// Flow reconstruction

TEST(FlowReconstruction, RecoversPathAndLatencyContentionFree) {
  const auto events =
      capture_all_to_origin(8, core::Congestion::kNone);
  const auto flows = reconstruct_flows(events);
  ASSERT_EQ(flows.size(), 64u);

  core::GridTopology grid(8);
  for (const Flow& f : flows) {
    ASSERT_TRUE(f.has_send);
    if (f.self_send) {
      EXPECT_EQ(f.expected_hops, 0u);
      continue;
    }
    EXPECT_TRUE(f.delivered);
    EXPECT_EQ(f.dst_node, 0);
    const auto src = grid.coord_of(static_cast<std::size_t>(f.src_node));
    EXPECT_EQ(f.expected_hops, manhattan(src, {0, 0}));
    EXPECT_EQ(f.hops.size(), f.expected_hops);
    // Unit cost model, no contention: latency == hops, zero queueing.
    EXPECT_DOUBLE_EQ(f.latency(), static_cast<double>(f.expected_hops));
    EXPECT_DOUBLE_EQ(f.total_wait(), 0.0);
    EXPECT_DOUBLE_EQ(f.total_transmit(), f.latency());
  }
}

TEST(FlowReconstruction, CapturesQueueingUnderSerialization) {
  const auto events =
      capture_all_to_origin(8, core::Congestion::kNodeSerialized);
  const auto flows = reconstruct_flows(events);
  double total_wait = 0.0;
  for (const Flow& f : flows) {
    if (f.self_send) continue;
    EXPECT_TRUE(f.delivered);
    // Exact decomposition even under queueing: latency = wait + transmit.
    EXPECT_NEAR(f.latency(), f.total_wait() + f.total_transmit(), 1e-9);
    total_wait += f.total_wait();
  }
  // 64 transmitters funneling into one corner must queue somewhere.
  EXPECT_GT(total_wait, 0.0);
}

TEST(FlowReconstruction, CollectiveSpansPairUp) {
  obs::RingBufferSink sink(1 << 14);
  sim::Simulator sim(1);
  core::GridTopology grid(4);
  core::VirtualNetwork vnet(sim, grid, core::uniform_cost_model());
  core::GroupHierarchy groups(grid);
  {
    obs::ScopedTrace trace(sink);
    const auto members = groups.members({0, 0}, 2);
    std::vector<double> values(members.size(), 1.0);
    core::group_reduce(vnet, members, groups.leader_of({0, 0}, 2), values,
                       core::ReduceOp::kSum, 1.0,
                       [](const core::CollectiveResult&) {});
    sim.run();
  }
  const auto spans = reconstruct_collectives(sink.events());
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_TRUE(spans[0].closed);
  EXPECT_EQ(spans[0].members, 16u);
  EXPECT_GT(spans[0].duration(), 0.0);
}

// ---------------------------------------------------------------------------
// Critical path

TEST(CriticalPath, FollowsDependencyChain) {
  obs::RingBufferSink sink(1 << 14);
  sim::Simulator sim(1);
  core::VirtualNetwork vnet(sim, core::GridTopology(8),
                            core::uniform_cost_model());
  {
    obs::ScopedTrace trace(sink);
    // A three-stage relay: (0,7) -> (0,3), then after a merge pause the
    // result continues (0,3) -> (0,1) -> (0,0).
    vnet.set_receiver({0, 3}, [&](const core::VirtualMessage&) {
      vnet.send({0, 3}, {0, 1}, std::monostate{}, 1.0);
    });
    vnet.set_receiver({0, 1}, [&](const core::VirtualMessage&) {
      vnet.send({0, 1}, {0, 0}, std::monostate{}, 1.0);
    });
    vnet.send({0, 7}, {0, 3}, std::monostate{}, 1.0);
    sim.run();
  }
  const auto flows = reconstruct_flows(sink.events());
  ASSERT_EQ(flows.size(), 3u);
  const CriticalPathReport report = critical_path(flows);
  ASSERT_EQ(report.chain.size(), 3u);
  // Chain in time order, rooted at the original sender.
  EXPECT_EQ(report.chain.front().flow->src_node, 7);
  EXPECT_EQ(report.chain.back().flow->dst_node, 0);
  EXPECT_DOUBLE_EQ(report.chain.front().gap_before, 0.0);
  // Sends happen inside the deliver callbacks at the delivery instant, so
  // the chain has no idle node time and total == transmit.
  EXPECT_DOUBLE_EQ(report.node_gaps, 0.0);
  EXPECT_DOUBLE_EQ(report.total(), 4.0 + 2.0 + 1.0);
  EXPECT_DOUBLE_EQ(report.message_transmit, 7.0);
  EXPECT_DOUBLE_EQ(report.start_time, 0.0);
  EXPECT_DOUBLE_EQ(report.end_time, 7.0);
}

TEST(CriticalPath, WindowRestrictsChain) {
  const auto events =
      capture_all_to_origin(8, core::Congestion::kNone);
  const auto flows = reconstruct_flows(events);
  const CriticalPathReport full = critical_path(flows);
  ASSERT_FALSE(full.chain.empty());
  // All sends happen at t=0, so every chain is a single flow; the longest
  // is the far-corner 14-hop message.
  EXPECT_EQ(full.chain.size(), 1u);
  EXPECT_DOUBLE_EQ(full.total(), 14.0);
  const CriticalPathReport windowed = critical_path_in(flows, 0.0, 8.0);
  ASSERT_FALSE(windowed.chain.empty());
  EXPECT_LE(windowed.end_time, 8.0);
  EXPECT_DOUBLE_EQ(windowed.total(), 8.0);
}

TEST(CriticalPath, EmptyOnNoDeliveries) {
  const CriticalPathReport report = critical_path({});
  EXPECT_TRUE(report.chain.empty());
  EXPECT_DOUBLE_EQ(report.total(), 0.0);
}

// ---------------------------------------------------------------------------
// Energy attribution

TEST(EnergyAttribution, MatchesLedgerExactlyPerNode) {
  obs::RingBufferSink sink(1 << 16);
  sim::Simulator sim(1);
  core::VirtualNetwork vnet(sim, core::GridTopology(8),
                            core::uniform_cost_model());
  {
    obs::ScopedTrace trace(sink);
    for (const auto& c : vnet.grid().all_coords()) {
      vnet.send(c, {0, 0}, std::monostate{}, 2.0);  // non-unit size
    }
    sim.run();
  }
  const EnergyMap map = attribute_energy(sink.events());
  const auto& ledger = vnet.ledger();
  EXPECT_NEAR(map.vnet.tx, ledger.total(net::EnergyUse::kTx), 1e-9);
  EXPECT_NEAR(map.vnet.rx, ledger.total(net::EnergyUse::kRx), 1e-9);
  ASSERT_EQ(map.vnet.nodes.size(), 64u);
  for (std::size_t i = 0; i < 64; ++i) {
    EXPECT_NEAR(map.vnet.nodes[i].tx,
                ledger.spent(static_cast<net::NodeId>(i), net::EnergyUse::kTx),
                1e-9)
        << "node " << i;
    EXPECT_NEAR(map.vnet.nodes[i].rx,
                ledger.spent(static_cast<net::NodeId>(i), net::EnergyUse::kRx),
                1e-9)
        << "node " << i;
  }
}

TEST(EnergyAttribution, LinkLayerMatchesLedger) {
  bench::PhysicalStack stack(4, 40, 1.6, 7);
  ASSERT_TRUE(stack.healthy());
  stack.ledger->reset();  // drop setup-phase energy: the trace starts here
  obs::RingBufferSink sink(1 << 16);
  {
    obs::ScopedTrace trace(sink);
    for (int i = 0; i < 4; ++i) {
      stack.overlay->send({3, 3}, {0, 0}, std::monostate{}, 1.0);
    }
    stack.sim.run();
  }
  const EnergyMap map = attribute_energy(sink.events());
  EXPECT_GT(map.link.total(), 0.0);
  EXPECT_NEAR(map.link.tx, stack.ledger->total(net::EnergyUse::kTx), 1e-9);
  EXPECT_NEAR(map.link.rx, stack.ledger->total(net::EnergyUse::kRx), 1e-9);
}

TEST(EnergyAttribution, HotspotReportQuantifiesLeaderImbalance) {
  // The quad-tree aggregation funnels summaries through NW-corner leaders;
  // the per-level fold must show leaders outspending followers, more so at
  // higher levels.
  obs::RingBufferSink sink(1 << 16);
  sim::Simulator sim(1);
  core::GridTopology grid(16);
  core::VirtualNetwork vnet(sim, grid, core::uniform_cost_model());
  core::GroupHierarchy groups(grid);
  {
    obs::ScopedTrace trace(sink);
    // Every node reports to its level-2 leader; leaders forward to the root.
    for (const auto& c : grid.all_coords()) {
      vnet.send(c, groups.leader_of(c, 2), std::monostate{}, 1.0);
    }
    for (const auto& leader : groups.leaders(2)) {
      vnet.send(leader, {0, 0}, std::monostate{}, 1.0);
    }
    sim.run();
  }
  const EnergyMap map = attribute_energy(sink.events());
  const HotspotReport hs = hotspot_report(map.vnet);
  EXPECT_EQ(hs.side, 16u);
  ASSERT_EQ(hs.levels.size(), 4u);
  const LevelEnergy& l2 = hs.levels[1];
  EXPECT_EQ(l2.level, 2u);
  EXPECT_EQ(l2.leader_count, 16u);
  EXPECT_GT(l2.leader_mean, l2.follower_mean);
  EXPECT_GT(l2.imbalance(), 1.0);
  EXPECT_GE(hs.hotspot_factor(), 1.0);
}

// ---------------------------------------------------------------------------
// Invariant checker

TEST(Checker, PassesOnRealCapture) {
  const auto events =
      capture_all_to_origin(8, core::Congestion::kNodeSerialized);
  const CheckReport report = check_trace(events);
  EXPECT_TRUE(report.ok()) << (report.issues.empty() ? "" : report.issues[0]);
  EXPECT_EQ(report.flows_checked, 64u);
}

TEST(Checker, DetectsDroppedDelivery) {
  auto events = capture_all_to_origin(4, core::Congestion::kNone);
  auto it = std::find_if(events.begin(), events.end(),
                         [](const obs::TraceEvent& e) {
                           return e.name == "deliver";
                         });
  ASSERT_NE(it, events.end());
  events.erase(it);
  const CheckReport report = check_trace(events);
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.issues[0].find("never delivered"), std::string::npos);
}

TEST(Checker, DetectsOrphanDelivery) {
  auto events = capture_all_to_origin(4, core::Congestion::kNone);
  // Delete a send, keeping its hops/delivery: an orphan receive.
  auto it = std::find_if(events.begin(), events.end(),
                         [](const obs::TraceEvent& e) {
                           return e.name == "send";
                         });
  ASSERT_NE(it, events.end());
  events.erase(it);
  const CheckReport report = check_trace(events);
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.issues[0].find("without a send"), std::string::npos);
}

TEST(Checker, DetectsTamperedHopTiming) {
  auto events = capture_all_to_origin(4, core::Congestion::kNone);
  for (obs::TraceEvent& ev : events) {
    if (ev.name != "hop") continue;
    for (obs::Attr& a : ev.attrs) {
      if (a.key == "wait") a.value = -0.5;  // impossible negative queueing
    }
    break;
  }
  const CheckReport report = check_trace(events);
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.issues[0].find("acausal"), std::string::npos);
}

TEST(Checker, EnergyAgreesWithMetricsSnapshot) {
  obs::RingBufferSink sink(1 << 16);
  sim::Simulator sim(1);
  core::VirtualNetwork vnet(sim, core::GridTopology(8),
                            core::uniform_cost_model());
  {
    obs::ScopedTrace trace(sink);
    for (const auto& c : vnet.grid().all_coords()) {
      vnet.send(c, {0, 0}, std::monostate{}, 1.0);
    }
    sim.run();
  }
  obs::MetricsRegistry registry;
  vnet.register_metrics(registry);
  const JsonValue snapshot = parse_json(registry.to_json());

  const CheckReport ok = check_energy(sink.events(), snapshot);
  EXPECT_TRUE(ok.ok()) << (ok.issues.empty() ? "" : ok.issues[0]);

  // A capture missing one hop's worth of events must be caught.
  auto truncated = sink.events();
  truncated.pop_back();
  auto it = std::find_if(truncated.begin(), truncated.end(),
                         [](const obs::TraceEvent& e) {
                           return e.name == "deliver";
                         });
  ASSERT_NE(it, truncated.end());
  truncated.erase(it);
  const CheckReport bad = check_energy(truncated, snapshot);
  EXPECT_FALSE(bad.ok());
  EXPECT_NE(bad.issues[0].find("vnet.energy"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Bench comparison

constexpr const char* kBaseline =
    "{\"bench\":\"a\",\"side\":4,\"latency\":10.0,\"setup_ms\":3.5}\n"
    "{\"bench\":\"a\",\"side\":8,\"latency\":20.0,\"setup_ms\":9.9}\n"
    "{\"bench\":\"b\",\"algo\":\"tree\",\"energy\":100.0}\n";

// ---- Depletion invariants ------------------------------------------------

obs::TraceEvent depletion_event(double t, std::int64_t node, double budget,
                                double spent) {
  return {t,
          node,
          obs::Category::kReliability,
          'i',
          "energy.depleted",
          0,
          {{"budget", budget}, {"spent", spent}}};
}

obs::TraceEvent link_event(double t, std::int64_t node, const char* name) {
  return {t, node, obs::Category::kLink, 'i', name, 1, {}};
}

TEST(CheckDepletion, CleanLifecyclePasses) {
  // Dying frame at the same timestamp as the crossing is legal (the link
  // layer charges tx before tracing it), later silence is mandatory.
  const std::vector<obs::TraceEvent> events = {
      link_event(1.0, 7, "broadcast"),
      depletion_event(2.0, 7, 50.0, 50.0),
      link_event(2.0, 7, "unicast"),  // the budget-crossing frame itself
      link_event(3.0, 8, "unicast"),  // other nodes keep talking
  };
  const CheckReport report = check_depletion(events);
  EXPECT_TRUE(report.ok()) << (report.issues.empty() ? "" : report.issues[0]);
  EXPECT_EQ(report.flows_checked, 1u);  // one depletion checked
}

TEST(CheckDepletion, FlagsDuplicateDepletion) {
  const std::vector<obs::TraceEvent> events = {
      depletion_event(2.0, 7, 50.0, 50.0),
      depletion_event(5.0, 7, 50.0, 55.0),
  };
  const CheckReport report = check_depletion(events);
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.issues[0].find("duplicate energy.depleted"),
            std::string::npos);
}

TEST(CheckDepletion, FlagsCrossingBelowBudget) {
  const CheckReport report =
      check_depletion({depletion_event(2.0, 7, 50.0, 30.0)});
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.issues[0].find("below budget"), std::string::npos);
}

TEST(CheckDepletion, FlagsPostDepletionTransmissionAndDelivery) {
  const std::vector<obs::TraceEvent> events = {
      depletion_event(2.0, 7, 50.0, 50.0),
      link_event(3.0, 7, "broadcast"),
      link_event(4.0, 7, "deliver"),
  };
  const CheckReport report = check_depletion(events);
  ASSERT_EQ(report.issues.size(), 2u);
  EXPECT_NE(report.issues[0].find("transmission at t="), std::string::npos);
  EXPECT_NE(report.issues[0].find("after depletion"), std::string::npos);
  EXPECT_NE(report.issues[1].find("delivery at t="), std::string::npos);
}

TEST(BenchCompare, IdenticalCapturesPass) {
  const CompareReport r = compare_bench(kBaseline, kBaseline, 0.0);
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.rows_compared, 3u);
  // side+latency per 'a' row, energy for 'b'; setup_ms is wall clock and
  // never compared.
  EXPECT_EQ(r.fields_compared, 5u);
}

TEST(BenchCompare, FlagsDriftBeyondTolerance) {
  const std::string current =
      "{\"bench\":\"a\",\"side\":4,\"latency\":10.5,\"setup_ms\":99.0}\n"
      "{\"bench\":\"a\",\"side\":8,\"latency\":25.0,\"setup_ms\":9.9}\n"
      "{\"bench\":\"b\",\"algo\":\"tree\",\"energy\":100.0}\n";
  const CompareReport r = compare_bench(kBaseline, current, 0.10);
  ASSERT_EQ(r.regressions.size(), 1u);  // 10.0->10.5 is 5%: within tolerance
  EXPECT_EQ(r.regressions[0].bench, "a");
  EXPECT_EQ(r.regressions[0].field, "latency");
  EXPECT_DOUBLE_EQ(r.regressions[0].baseline, 20.0);
  EXPECT_DOUBLE_EQ(r.regressions[0].current, 25.0);
  EXPECT_NEAR(r.regressions[0].rel_change(), 0.25, 1e-9);
  EXPECT_FALSE(r.ok());
}

TEST(BenchCompare, FlagsStructuralMismatches) {
  const std::string missing_row =
      "{\"bench\":\"a\",\"side\":4,\"latency\":10.0}\n"
      "{\"bench\":\"b\",\"algo\":\"tree\",\"energy\":100.0}\n";
  const CompareReport rows = compare_bench(kBaseline, missing_row, 0.10);
  EXPECT_FALSE(rows.ok());
  ASSERT_FALSE(rows.mismatches.empty());

  const std::string changed_algo =
      "{\"bench\":\"a\",\"side\":4,\"latency\":10.0,\"setup_ms\":1.0}\n"
      "{\"bench\":\"a\",\"side\":8,\"latency\":20.0,\"setup_ms\":1.0}\n"
      "{\"bench\":\"b\",\"algo\":\"list\",\"energy\":100.0}\n";
  const CompareReport algo = compare_bench(kBaseline, changed_algo, 0.10);
  EXPECT_FALSE(algo.ok());
  EXPECT_NE(algo.mismatches[0].find("identity"), std::string::npos);

  EXPECT_THROW(compare_bench("not json\n", kBaseline, 0.1),
               std::runtime_error);
  EXPECT_THROW(compare_bench("{\"no_bench_key\":1}\n", kBaseline, 0.1),
               std::runtime_error);
}

// ---------------------------------------------------------------------------
// Chrome trace exporter validation

TEST(ChromeExport, ProducesValidJsonWithThreadNames) {
  const auto events =
      capture_all_to_origin(4, core::Congestion::kNone);
  std::ostringstream os;
  obs::write_chrome_trace(events, os);
  const JsonValue doc = parse_json(os.str());  // whole file must parse

  const JsonValue* trace_events = doc.find("traceEvents");
  ASSERT_NE(trace_events, nullptr);
  const JsonArray& arr = trace_events->array();

  std::set<std::int64_t> nodes_in_data;
  std::set<std::int64_t> nodes_named;
  std::map<std::uint64_t, double> last_ts;
  for (const JsonValue& ev : arr) {
    const std::string& name = ev.find("name")->string();
    const auto tid = static_cast<std::int64_t>(ev.find("tid")->number());
    if (ev.find("ph")->string() == "M") {
      ASSERT_EQ(name, "thread_name");
      nodes_named.insert(tid);
      continue;
    }
    nodes_in_data.insert(tid);
    // ts monotone per flow: the Chrome timeline arrows must point forward.
    const JsonValue* flow = ev.find("args")->find("flow");
    if (flow != nullptr) {
      const double ts = ev.find("ts")->number();
      const auto id = static_cast<std::uint64_t>(flow->number());
      auto [it, fresh] = last_ts.try_emplace(id, ts);
      if (!fresh) {
        EXPECT_GE(ts, it->second) << "flow " << id << " went backwards";
        it->second = ts;
      }
    }
  }
  // Every node appearing in data events carries a thread-name record.
  for (std::int64_t node : nodes_in_data) {
    EXPECT_TRUE(nodes_named.count(node)) << "node " << node << " unnamed";
  }
}

// ---------------------------------------------------------------------------
// CLI driver

class InspectCli : public ::testing::Test {
 protected:
  /// Runs a subcommand; returns exit code, fills out_/err_.
  int run(std::vector<std::string> args) {
    out_.str("");
    err_.str("");
    return run_inspect(args, out_, err_);
  }

  /// Writes a capture of the 8x8 all-to-origin run to a temp file.
  std::string write_trace() {
    const std::string path =
        unique_path("analyze_cli.trace.jsonl");
    const auto events =
        capture_all_to_origin(8, core::Congestion::kNodeSerialized);
    std::ofstream out(path);
    obs::write_jsonl(events, out);
    return path;
  }

  std::string write_file(const std::string& name, const std::string& text) {
    const std::string path = unique_path(name);
    std::ofstream(path) << text;
    return path;
  }

  /// Temp path namespaced by the running test: ctest launches each gtest
  /// case as its own parallel process, so a fixed file name races.
  static std::string unique_path(const std::string& name) {
    return testing::TempDir() +
           testing::UnitTest::GetInstance()->current_test_info()->name() +
           "." + name;
  }

  std::ostringstream out_;
  std::ostringstream err_;
};

TEST_F(InspectCli, FlowsTable) {
  ASSERT_EQ(run({"flows", write_trace(), "--limit", "5"}), 0);
  EXPECT_NE(out_.str().find("latency"), std::string::npos);
  EXPECT_NE(out_.str().find("5 of 64 flows"), std::string::npos);
}

TEST_F(InspectCli, CriticalPath) {
  ASSERT_EQ(run({"critical-path", write_trace()}), 0);
  EXPECT_NE(out_.str().find("critical path:"), std::string::npos);
  EXPECT_NE(out_.str().find("queueing"), std::string::npos);
}

TEST_F(InspectCli, EnergyMap) {
  ASSERT_EQ(run({"energy-map", write_trace()}), 0);
  EXPECT_NE(out_.str().find("virtual layer"), std::string::npos);
  EXPECT_NE(out_.str().find("hotspot"), std::string::npos);
  EXPECT_NE(out_.str().find("imbalance"), std::string::npos);
}

TEST_F(InspectCli, HistogramSummaries) {
  ASSERT_EQ(run({"histogram", write_trace()}), 0);
  EXPECT_NE(out_.str().find("latency"), std::string::npos);
  EXPECT_NE(out_.str().find("p95"), std::string::npos);
}

TEST_F(InspectCli, CheckPassesAndFails) {
  const std::string good = write_trace();
  ASSERT_EQ(run({"check", good}), 0);
  EXPECT_NE(out_.str().find("all invariants hold"), std::string::npos);

  // Corrupt the capture: strip the first deliver line.
  std::ifstream in(good);
  std::string line;
  std::string bad_text;
  bool dropped = false;
  while (std::getline(in, line)) {
    if (!dropped && line.find("\"deliver\"") != std::string::npos) {
      dropped = true;
      continue;
    }
    bad_text += line + "\n";
  }
  ASSERT_TRUE(dropped);
  const std::string bad = write_file("analyze_cli.bad.jsonl", bad_text);
  EXPECT_EQ(run({"check", bad}), 1);
  EXPECT_NE(out_.str().find("FAIL"), std::string::npos);
}

TEST_F(InspectCli, BenchCompareGate) {
  const std::string base = write_file(
      "analyze_cli.base.jsonl",
      "{\"bench\":\"x\",\"latency\":10.0}\n{\"bench\":\"y\",\"e\":5.0}\n");
  const std::string same = write_file(
      "analyze_cli.same.jsonl",
      "{\"bench\":\"x\",\"latency\":10.4}\n{\"bench\":\"y\",\"e\":5.0}\n");
  const std::string worse = write_file(
      "analyze_cli.worse.jsonl",
      "{\"bench\":\"x\",\"latency\":14.0}\n{\"bench\":\"y\",\"e\":5.0}\n");
  EXPECT_EQ(run({"bench-compare", "--baseline", base, "--current", same,
                 "--tolerance", "10%"}),
            0);
  EXPECT_NE(out_.str().find("no regressions"), std::string::npos);
  EXPECT_EQ(run({"bench-compare", "--baseline", base, "--current", worse,
                 "--tolerance", "10%"}),
            1);
  EXPECT_NE(out_.str().find("regression"), std::string::npos);
}

TEST_F(InspectCli, UsageErrors) {
  EXPECT_EQ(run({}), 2);
  EXPECT_EQ(run({"no-such-command"}), 2);
  EXPECT_EQ(run({"flows", "/no/such/file.jsonl"}), 2);
  EXPECT_EQ(run({"flows", "a.jsonl", "--bogus", "1"}), 2);
  EXPECT_EQ(run({"bench-compare", "--baseline", "only"}), 2);
  EXPECT_EQ(run({"help"}), 0);
}

}  // namespace
