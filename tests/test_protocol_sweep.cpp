// Parameterized protocol sweeps: topology emulation, leader binding, and
// overlay routing checked across deployment densities, grid sizes, radio
// ranges, and seeds (TEST_P property coverage for the Section 5 runtime).
#include <gtest/gtest.h>

#include <tuple>

#include "app/field.h"
#include "app/labeling.h"
#include "app/topographic.h"
#include "bench/bench_common.h"

namespace wsn {
namespace {

// (grid side, nodes per cell, seed)
using SweepParam = std::tuple<std::size_t, std::size_t, int>;

class ProtocolSweep : public ::testing::TestWithParam<SweepParam> {
 protected:
  ProtocolSweep()
      : stack_(std::get<0>(GetParam()),
               std::get<0>(GetParam()) * std::get<0>(GetParam()) *
                   std::get<1>(GetParam()),
               1.35,
               static_cast<std::uint64_t>(std::get<2>(GetParam())) * 131 +
                   std::get<0>(GetParam())) {}

  bench::PhysicalStack stack_;
};

TEST_P(ProtocolSweep, EmulationTablesCompleteAndAcyclic) {
  if (!stack_.healthy()) GTEST_SKIP() << "deployment precondition failed";
  const auto grid_side = std::get<0>(GetParam());
  core::GridTopology grid(grid_side);
  for (net::NodeId i = 0; i < stack_.graph->node_count(); ++i) {
    const core::GridCoord cell = stack_.mapper->cell_of(i);
    for (core::Direction d : core::kAllDirections) {
      const auto nbr = grid.neighbor(cell, d);
      if (!nbr) continue;
      const auto chain = emulation::follow_chain(
          *stack_.mapper, stack_.emulation_result.tables, i, d);
      ASSERT_FALSE(chain.empty());
      EXPECT_EQ(stack_.mapper->cell_of(chain.back()), *nbr);
    }
  }
}

TEST_P(ProtocolSweep, BindingElectsOracleWinnerEverywhere) {
  if (!stack_.healthy()) GTEST_SKIP() << "deployment precondition failed";
  const auto oracle = emulation::oracle_leaders(
      *stack_.mapper, emulation::BindingMetric::kDistanceToCenter,
      *stack_.ledger);
  EXPECT_EQ(stack_.binding_result.leaders, oracle);
}

TEST_P(ProtocolSweep, OverlayQueryMatchesReference) {
  if (!stack_.healthy()) GTEST_SKIP() << "deployment precondition failed";
  const auto grid_side = std::get<0>(GetParam());
  sim::Rng rng(static_cast<std::uint64_t>(std::get<2>(GetParam())));
  const app::FeatureGrid field = app::random_grid(grid_side, 0.5, rng);
  const auto outcome = app::run_topographic_query(*stack_.overlay, field);
  EXPECT_EQ(outcome.regions.size(), app::label_regions(field).region_count());
  EXPECT_EQ(stack_.overlay->failed_sends(), 0u);
  EXPECT_GE(stack_.overlay->physical_hops(), stack_.overlay->virtual_hops());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ProtocolSweep,
    ::testing::Combine(::testing::Values<std::size_t>(2, 4, 8),
                       ::testing::Values<std::size_t>(8, 16),
                       ::testing::Values(1, 2, 3)));

// ---------------------------------------------------------------------------
// Distance-independent packet loss: the emulation protocol remains safe and
// the boundary audit holds under any loss rate.
// ---------------------------------------------------------------------------
class LossSweep : public ::testing::TestWithParam<double> {};

TEST_P(LossSweep, EmulationSafeUnderLoss) {
  sim::Simulator sim(11);
  const net::Rect terrain = net::square_terrain(4.0);
  net::DeploymentConfig cfg;
  cfg.kind = net::DeploymentKind::kOnePerCellPlus;
  cfg.node_count = 200;
  cfg.terrain = terrain;
  cfg.cells_per_side = 4;
  auto positions = net::deploy(cfg, sim.rng());
  net::NetworkGraph graph(std::move(positions), 1.35);
  net::EnergyLedger ledger(graph.node_count());
  net::LinkLayer link(sim, graph, net::RadioModel{1.35, 1.0, 1.0, 1.0},
                      net::CpuModel{}, ledger);
  link.set_loss_probability(GetParam());
  emulation::CellMapper mapper(graph, terrain, 4);
  const auto result = emulation::run_topology_emulation(link, mapper);
  EXPECT_TRUE(result.boundary_audit_passed);
  // Whatever entries exist must still point at same- or adjacent-cell
  // neighbors.
  for (net::NodeId i = 0; i < graph.node_count(); ++i) {
    for (core::Direction d : core::kAllDirections) {
      const net::NodeId next = result.tables[i][d];
      if (next == net::kNoNode) continue;
      EXPECT_TRUE(graph.has_edge(i, next));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, LossSweep,
                         ::testing::Values(0.0, 0.1, 0.3, 0.6, 0.9));

}  // namespace
}  // namespace wsn
