// Event-driven target tracking (the Section 4.1 counterpoint to the static
// task graph): a target crosses the field; only nearby nodes react; cluster
// heads hand off along the trajectory; energy stays local.
//
// Build & run:  ./examples/target_tracking
#include <cstdio>

#include "analysis/metrics.h"
#include "app/field.h"
#include "app/topographic.h"
#include "app/tracking.h"
#include "core/virtual_network.h"

int main() {
  using namespace wsn;
  const std::size_t side = 16;

  sim::Simulator sim(8);
  core::VirtualNetwork vnet(sim, core::GridTopology(side),
                            core::uniform_cost_model());

  const std::vector<net::Point> waypoints{
      {1.0, 14.0}, {6.0, 6.0}, {12.0, 9.0}, {14.5, 1.5}};
  const auto trajectory = app::sample_trajectory(waypoints, 24);

  app::TrackingConfig config;
  config.detection_threshold = 0.3;  // tighter clusters around the target
  const app::TrackingResult result = app::run_tracking(vnet, trajectory, config);

  std::printf("round  true (x,y)      estimate (x,y)   error  head     detectors\n");
  std::printf("--------------------------------------------------------------------\n");
  for (std::size_t i = 0; i < result.rounds.size(); ++i) {
    const auto& r = result.rounds[i];
    std::printf("%5zu  (%5.2f,%5.2f)  (%5.2f,%5.2f)  %5.2f  (%2d,%2d)  %9zu\n",
                i, r.true_position.x, r.true_position.y, r.estimate.x,
                r.estimate.y, r.error, r.head.row, r.head.col, r.detectors);
  }

  std::printf("\nmean estimate error : %.3f cells over %zu rounds\n",
              result.mean_error, result.detected_rounds);
  std::printf("cluster-head handoffs: %llu\n",
              static_cast<unsigned long long>(result.head_handoffs));
  std::printf("detector messages    : %llu\n",
              static_cast<unsigned long long>(result.messages));

  // Contrast with the whole-grid topographic round: a tracking round only
  // taxes the neighborhood of the target.
  const double tracking_energy = vnet.ledger().total();
  sim::Simulator sim2(9);
  core::VirtualNetwork vnet2(sim2, core::GridTopology(side),
                             core::uniform_cost_model());
  app::run_topographic_query(vnet2, app::checkerboard_grid(side));
  std::printf("\nenergy per round: %.0f (tracking) vs %.0f (whole-grid "
              "topographic round)\n",
              tracking_energy / static_cast<double>(result.rounds.size()),
              vnet2.ledger().total());
  return 0;
}
