// Topographic mapping on a real (simulated) deployment - the paper's full
// pipeline end to end:
//
//   deploy 1,280 sensor nodes arbitrarily over a terrain
//   -> emulate the 8x8 virtual grid (Section 5.1 protocol)
//   -> bind virtual processes to physical nodes (Section 5.2 election)
//   -> run the synthesized Figure 4 program over the overlay
//   -> compare against the same program on the pristine virtual grid.
//
// Build & run:  ./examples/topographic_mapping
#include <cstdio>

#include "analysis/metrics.h"
#include "app/field.h"
#include "app/labeling.h"
#include "app/topographic.h"
#include "core/virtual_network.h"
#include "emulation/overlay_network.h"
#include "net/deployment.h"

int main() {
  using namespace wsn;
  const std::size_t grid_side = 8;
  const std::size_t node_count = 1280;
  const double radio_range = 1.3;

  // --- Physical deployment -------------------------------------------------
  sim::Simulator sim(42);
  const net::Rect terrain = net::square_terrain(static_cast<double>(grid_side));
  net::DeploymentConfig cfg;
  cfg.kind = net::DeploymentKind::kOnePerCellPlus;  // paper precondition
  cfg.node_count = node_count;
  cfg.terrain = terrain;
  cfg.cells_per_side = grid_side;
  auto positions = net::deploy(cfg, sim.rng());
  net::NetworkGraph graph(std::move(positions), radio_range);
  std::printf("deployment: %zu nodes, %zu radio links, connected=%s\n",
              graph.node_count(), graph.edge_count(),
              graph.connected() ? "yes" : "no");

  emulation::CellMapper mapper(graph, terrain, grid_side);
  std::printf("cells occupied: %s, per-cell subgraphs connected: %s\n",
              mapper.all_cells_occupied() ? "all" : "MISSING",
              mapper.all_cells_connected() ? "all" : "NO");

  net::EnergyLedger ledger(graph.node_count());
  net::LinkLayer link(sim, graph, net::RadioModel{radio_range, 1.0, 1.0, 1.0},
                      net::CpuModel{}, ledger);

  // --- Runtime system (Section 5) ------------------------------------------
  auto emu = emulation::run_topology_emulation(link, mapper);
  std::printf("\ntopology emulation: %llu broadcasts, %llu suppressed at "
              "boundaries, converged at t=%.1f\n",
              static_cast<unsigned long long>(emu.broadcasts),
              static_cast<unsigned long long>(emu.suppressed),
              emu.converged_at);
  auto binding = emulation::run_leader_binding(link, mapper);
  std::printf("leader binding    : %llu broadcasts, unique leaders: %s\n",
              static_cast<unsigned long long>(binding.broadcasts),
              binding.unique_leaders ? "yes" : "NO");
  const double setup_energy = ledger.total();
  emulation::OverlayNetwork overlay(link, mapper, std::move(emu),
                                    std::move(binding));

  // --- The application ------------------------------------------------------
  const app::FeatureGrid field = app::threshold_sample(
      app::plume_field(0.15, 0.35, 0.35), grid_side, 0.25);
  std::printf("\ncontaminant plume, thresholded at the %zux%zu PoC grid:\n%s\n",
              grid_side, grid_side, field.render().c_str());

  const double t0 = sim.now();
  const auto physical = app::run_topographic_query(overlay, field);
  std::printf("physical run : %zu regions, latency %.1f, %llu messages, "
              "stretch %.2f, energy %.0f\n",
              physical.regions.size(), physical.round.finished_at - t0,
              static_cast<unsigned long long>(physical.round.messages_sent),
              static_cast<double>(overlay.physical_hops()) /
                  static_cast<double>(overlay.virtual_hops()),
              ledger.total() - setup_energy);

  // --- The designer's view ---------------------------------------------------
  sim::Simulator vsim(1);
  core::VirtualNetwork vnet(vsim, core::GridTopology(grid_side),
                            core::uniform_cost_model());
  const auto virt = app::run_topographic_query(vnet, field);
  std::printf("virtual run  : %zu regions, latency %.1f, %llu messages, "
              "energy %.0f\n",
              virt.regions.size(), virt.round.finished_at,
              static_cast<unsigned long long>(virt.round.messages_sent),
              vnet.ledger().total());

  const app::Labeling reference = app::label_regions(field);
  std::printf("reference CCL: %zu regions\n", reference.region_count());
  std::printf("\nAll three agree: %s\n",
              physical.regions.size() == virt.regions.size() &&
                      virt.regions.size() == reference.region_count()
                  ? "yes"
                  : "NO");
  return 0;
}
