// Fleet health monitoring: "querying the properties of sensor nodes such as
// residual energy levels is useful for resource management, dynamic
// retasking, preventive maintenance of sensor fields" (Section 3.1).
//
// Uses the collective computation primitives (sum / min / sort / rank) over
// hierarchical groups to audit residual energy after a burst of sensing
// work, then re-elects cell leaders by residual energy on a physical
// deployment (the Section 5.2 rotation rationale).
//
// Build & run:  ./examples/fleet_health
#include <cstdio>
#include <vector>

#include "analysis/metrics.h"
#include "app/field.h"
#include "app/topographic.h"
#include "bench/bench_common.h"
#include "core/primitives.h"
#include "core/virtual_network.h"

int main() {
  using namespace wsn;
  const std::size_t side = 8;
  const double budget = 600.0;

  // --- Phase 1: a burst of topographic work drains the virtual network ----
  sim::Simulator sim(3);
  core::VirtualNetwork vnet(sim, core::GridTopology(side),
                            core::uniform_cost_model());
  sim::Rng field_rng(5);
  for (int round = 0; round < 8; ++round) {
    const app::FeatureGrid field = app::threshold_sample(
        app::hotspot_field(2 + round % 3, field_rng), side, 0.5);
    app::run_topographic_query(vnet, field);
  }
  const auto report = analysis::energy_report(vnet.ledger());
  std::printf("after 8 query rounds: total %.0f, hottest %.0f, cv %.2f\n\n",
              report.total, report.max, report.cv);

  // --- Phase 2: in-network residual-energy audit via collectives ----------
  const core::GroupHierarchy& groups = vnet.groups();
  const auto members = groups.members({0, 0}, groups.max_level());
  std::vector<double> residual;
  residual.reserve(members.size());
  for (const core::GridCoord& c : members) {
    residual.push_back(budget -
                       vnet.ledger().spent(static_cast<net::NodeId>(
                           vnet.grid().index_of(c))));
  }

  double fleet_min = 0;
  double fleet_sum = 0;
  core::group_reduce(vnet, members, {0, 0}, residual, core::ReduceOp::kMin,
                     1.0, [&](const core::CollectiveResult& r) {
                       fleet_min = r.value;
                     });
  sim.run();
  core::group_reduce(vnet, members, {0, 0}, residual, core::ReduceOp::kSum,
                     1.0, [&](const core::CollectiveResult& r) {
                       fleet_sum = r.value;
                     });
  sim.run();
  std::printf("fleet audit (collectives at the root leader):\n");
  std::printf("  mean residual : %.1f / %.0f\n",
              fleet_sum / static_cast<double>(members.size()), budget);
  std::printf("  worst residual: %.1f\n", fleet_min);

  std::vector<double> sorted;
  core::group_sort(vnet, members, {0, 0}, residual, 1.0,
                   [&](std::vector<double> v, core::CollectiveResult) {
                     sorted = std::move(v);
                   });
  sim.run();
  std::printf("  decile cut    : %.1f (10%% of nodes are below this)\n\n",
              sorted[sorted.size() / 10]);

  // --- Phase 3: residual-energy leader re-election on a real deployment ---
  bench::PhysicalStack stack(4, 160, 1.3, 17);
  // Drain the current leaders with some overlay work.
  const app::FeatureGrid field = app::ring_grid(4);
  app::run_topographic_query(*stack.overlay, field);

  const auto rotated = emulation::run_leader_binding(
      *stack.link, *stack.mapper, emulation::BindingMetric::kResidualEnergy);
  std::size_t changed = 0;
  for (std::size_t i = 0; i < rotated.leaders.size(); ++i) {
    if (rotated.leaders[i] != stack.binding_result.leaders[i]) ++changed;
  }
  std::printf("physical re-election by residual energy: %zu of %zu cell "
              "leaders rotated away from drained nodes\n",
              changed, rotated.leaders.size());
  std::printf("unique leaders after rotation: %s\n",
              rotated.unique_leaders ? "yes" : "NO");
  return 0;
}
