// Contaminant monitoring over time: the HVAC/contaminant scenario of
// Section 3.1 run as a multi-round application. A plume drifts and widens
// across the terrain; every round the network re-samples, labels the
// contaminated regions in-network, and answers queries; per-node energy
// accumulates against a finite budget until the first node dies.
//
// Build & run:  ./examples/contaminant_plume
#include <cmath>
#include <cstdio>

#include "analysis/metrics.h"
#include "app/field.h"
#include "app/queries.h"
#include "app/topographic.h"
#include "core/virtual_network.h"

int main() {
  using namespace wsn;
  const std::size_t side = 16;
  const double budget = 2000.0;  // per-node energy budget

  sim::Simulator sim(11);
  core::VirtualNetwork vnet(sim, core::GridTopology(side),
                            core::uniform_cost_model());

  std::printf("round  source->reach  regions  contaminated  largest  hottest-E  first-death?\n");
  std::printf("--------------------------------------------------------------------------------\n");

  std::size_t round = 0;
  bool dead = false;
  for (double t = 0.0; t <= 1.0 && !dead; t += 0.125, ++round) {
    // The plume source creeps east and the release strengthens over time.
    const double source_u = 0.05 + 0.2 * t;
    const double reach = 0.4 + 0.8 * t;
    const app::ScalarField plume =
        app::plume_field(source_u, 0.5, 0.15, 0.07, reach);
    const app::FeatureGrid field = app::threshold_sample(plume, side, 0.22);

    const auto outcome = app::run_topographic_query(vnet, field);
    const auto largest = app::largest_region(outcome.regions);

    // Lifetime check against the accumulated ledger.
    const auto report = analysis::energy_report(vnet.ledger());
    dead = report.max >= budget;

    std::printf("%5zu  %.2f -> %.2f    %7zu  %12llu  %7llu  %9.0f  %s\n", round,
                source_u, reach, outcome.regions.size(),
                static_cast<unsigned long long>(
                    app::total_feature_area(outcome.regions)),
                static_cast<unsigned long long>(largest ? largest->area : 0),
                report.max, dead ? "DEAD" : "-");
  }

  const auto report = analysis::energy_report(vnet.ledger());
  std::printf("\nafter %zu rounds: total energy %.0f, hottest node %.0f "
              "(budget %.0f), balance cv %.2f\n",
              round, report.total, report.max, budget, report.cv);
  if (report.max > 0 && round > 0) {
    const double per_round = report.max / static_cast<double>(round);
    std::printf("projected lifetime at this duty cycle: %.0f rounds\n",
                budget / per_round);
  }
  return 0;
}
