// Quickstart: the whole methodology in ~60 lines.
//
//   1. Define the virtual architecture (grid + uniform cost model).
//   2. Sample a synthetic temperature field and threshold it.
//   3. Run the synthesized topographic-querying program on the virtual grid.
//   4. Read the answers (region count, areas) and the predicted costs.
//
// Build & run:  ./examples/quickstart
//
// Observability (see README "Observability"):
//   --trace <path>         dump the full JSONL event trace
//   --trace-out <dir>      stream the trace to rotating segment files as it
//                          is emitted (bounded memory; see README "Capturing
//                          traces at scale"). Byte-identical to the
//                          in-memory capture modulo encoding.
//   --trace-format <fmt>   segment encoding for --trace-out: "wtr" (compact
//                          binary, default) or "jsonl"
//   --chrome-trace <path>  dump a Chrome trace_event file (about://tracing)
//   --metrics <path>       dump the unified metrics snapshot as JSON
//   --profile <path>       arm the host-side SimProfiler for the whole run
//                          and dump its perf snapshot as JSON (read it with
//                          `wsn-inspect perf`); also adds prof.*/kernel.*
//                          gauges to --metrics and a host-time track to
//                          --chrome-trace. Simulated output and traces are
//                          byte-identical with or without this flag.
//
// Robustness (see README "Fault tolerance"):
//   --campaign <json>      additionally replay a fault-injection campaign
//                          (e.g. campaigns/loss_burst.json or
//                          campaigns/region_outage.json) against a physical
//                          deployment hardened with ARQ and the distributed
//                          heartbeat/lease failure detector, appended after
//                          the classic output. Plans carrying
//                          state_corruption events (campaigns/corruption.json)
//                          additionally switch on the detector's
//                          self-stabilization audit rounds and report the
//                          corruption strikes, audit activity, and
//                          re-convergence at the end of the campaign.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/analytical.h"
#include "analysis/metrics.h"
#include "app/field.h"
#include "app/queries.h"
#include "app/topographic.h"
#include "bench/bench_common.h"
#include "core/primitives.h"
#include "core/virtual_network.h"
#include "emulation/failure_detector.h"
#include "obs/export.h"
#include "obs/metrics_registry.h"
#include "obs/profiler.h"
#include "obs/sinks.h"
#include "obs/stream_sink.h"
#include "obs/trace.h"
#include "sim/depletion_monitor.h"
#include "sim/fault_plan.h"

namespace {

std::string arg_value(int argc, char** argv, const char* flag) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return argv[i + 1];
  }
  return "";
}

/// The --campaign phase: a physical 8x8 deployment with the ARQ channel and
/// the distributed failure detector (heartbeat/lease re-election — no
/// oracle), kept alive until the metrics dump so its instruments can be
/// registered.
struct CampaignPhase {
  wsn::bench::PhysicalStack stack{8, 200, 1.3, 1};
  std::unique_ptr<wsn::emulation::FailureDetector> detector;
  std::unique_ptr<wsn::sim::FaultInjector> injector;
  std::unique_ptr<wsn::sim::DepletionMonitor> monitor;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace wsn;

  const std::string trace_path = arg_value(argc, argv, "--trace");
  const std::string trace_out = arg_value(argc, argv, "--trace-out");
  const std::string trace_format = arg_value(argc, argv, "--trace-format");
  const std::string chrome_path = arg_value(argc, argv, "--chrome-trace");
  const std::string metrics_path = arg_value(argc, argv, "--metrics");
  const std::string profile_path = arg_value(argc, argv, "--profile");

  if (!trace_format.empty() && trace_format != "wtr" &&
      trace_format != "jsonl") {
    std::fprintf(stderr,
                 "error: unknown --trace-format %s (expected wtr or jsonl)\n",
                 trace_format.c_str());
    return 1;
  }

  // Host-side self-profiling: reads only the host clock, so everything the
  // simulation computes or traces is byte-identical with or without it.
  const bool profiling = !profile_path.empty();
  if (profiling) {
    obs::profiler().set_span_log_capacity(1 << 16);
    obs::profiler().arm();
    obs::profiler().begin_phase("classic");
  }

  // Capture everything the run emits when any dump was requested; with no
  // sink installed, tracing stays disabled and costs one branch per site.
  // --trace/--chrome-trace buffer in memory (they need the whole capture);
  // --trace-out streams to segment files as events arrive, and a TeeSink
  // feeds both when the two are combined.
  obs::RingBufferSink sink(1 << 20);
  const bool ring_wanted = !trace_path.empty() || !chrome_path.empty();
  const bool tracing = ring_wanted || !trace_out.empty();
  std::unique_ptr<obs::StreamingFileSink> stream;
  std::unique_ptr<obs::TeeSink> tee;
  if (!trace_out.empty()) {
    obs::StreamSinkConfig scfg;
    scfg.directory = trace_out;
    scfg.format = trace_format == "jsonl" ? obs::TraceFormat::kJsonl
                                          : obs::TraceFormat::kWtr;
    stream = std::make_unique<obs::StreamingFileSink>(scfg);
  }
  if (tracing) {
    obs::TraceSink* install = &sink;
    if (stream) {
      if (ring_wanted) {
        tee = std::make_unique<obs::TeeSink>(sink, *stream);
        install = tee.get();
      } else {
        install = stream.get();
      }
    }
    obs::tracer().set_sink(install);
    obs::tracer().set_mask(obs::kAllCategories);
  }

  // 1. A 16x16 virtual grid with the paper's unit cost model.
  const std::size_t side = 16;
  sim::Simulator sim(/*seed=*/2004);
  core::VirtualNetwork vnet(sim, core::GridTopology(side),
                            core::uniform_cost_model());

  // 2. Three Gaussian hot spots over the unit square; feature = reading
  //    above 0.5.
  sim::Rng field_rng(7);
  const app::FeatureGrid field =
      app::threshold_sample(app::hotspot_field(3, field_rng), side, 0.5);
  std::printf("Thresholded field ('#' = feature node):\n%s\n",
              field.render().c_str());

  // 3. One round of identification-and-labeling of homogeneous regions.
  const app::TopographicOutcome outcome = app::run_topographic_query(vnet, field);

  // 4. Topographic queries over the stored result.
  std::printf("regions found       : %zu\n", app::count_regions(outcome.regions));
  std::printf("total feature area  : %llu cells\n",
              static_cast<unsigned long long>(
                  app::total_feature_area(outcome.regions)));
  if (const auto largest = app::largest_region(outcome.regions)) {
    std::printf("largest region      : %llu cells, rows %d..%d, cols %d..%d\n",
                static_cast<unsigned long long>(largest->area),
                largest->bounds.row_min, largest->bounds.row_max,
                largest->bounds.col_min, largest->bounds.col_max);
  }

  // Costs: measured on the virtual architecture vs the closed form.
  const auto report = analysis::energy_report(vnet.ledger());
  const auto predicted =
      analysis::predict_quadtree(side, core::uniform_cost_model());
  std::printf("\nround latency       : %.1f (predicted %.1f)\n",
              outcome.round.finished_at, predicted.latency);
  std::printf("total energy        : %.0f (predicted %.0f)\n", report.total,
              predicted.total_energy);
  std::printf("network messages    : %llu (predicted %llu)\n",
              static_cast<unsigned long long>(outcome.round.messages_sent),
              static_cast<unsigned long long>(predicted.messages));

  // Optional fault-injection campaign, appended after the classic output so
  // the default run stays byte-identical.
  std::unique_ptr<CampaignPhase> campaign;
  const std::string campaign_path = arg_value(argc, argv, "--campaign");
  if (!campaign_path.empty()) {
    std::ifstream in(campaign_path);
    if (!in) {
      std::fprintf(stderr, "error: cannot read campaign %s\n",
                   campaign_path.c_str());
      return 1;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    const sim::FaultPlan plan = sim::FaultPlan::from_json(buf.str());
    bool has_corruption = false;
    bool has_membership = false;
    for (const sim::FaultEvent& ev : plan.events) {
      if (ev.kind == sim::FaultKind::kStateCorruption) {
        has_corruption = true;
        if (ev.target == sim::CorruptionTarget::kMembership) {
          has_membership = true;
        }
      }
    }

    if (profiling) obs::profiler().begin_phase("campaign");
    campaign = std::make_unique<CampaignPhase>();
    CampaignPhase& c = *campaign;
    if (!c.stack.healthy()) {
      std::fprintf(stderr, "error: campaign deployment unhealthy\n");
      return 1;
    }
    net::ReliableConfig rcfg;
    rcfg.max_retries = 3;
    c.stack.enable_arq(rcfg);
    // Batteries are infinite unless the plan carries set_budget events, so
    // the monitor and the proactive-handoff mark are inert for the classic
    // campaigns and their output stays byte-identical.
    c.monitor = std::make_unique<sim::DepletionMonitor>(c.stack.sim,
                                                        *c.stack.link);
    c.monitor->arm();
    emulation::FailureDetectorConfig fd_cfg;
    fd_cfg.handoff_low_water = 48.0;  // 60% of depletion.json's 80 headroom
    // Self-stabilization audits cost periodic floods, so they come on only
    // when the plan actually corrupts state; the classic campaigns keep the
    // audit-free (byte-identical) detector schedule.
    if (has_corruption) fd_cfg.audit_period = 15.0;
    // Membership-target strikes additionally need live beliefs/rosters
    // (and the adoption machinery) to have anything to scramble and heal.
    if (has_membership) fd_cfg.membership = true;
    c.detector =
        std::make_unique<emulation::FailureDetector>(*c.stack.overlay, fd_cfg);
    c.injector = std::make_unique<sim::FaultInjector>(
        c.stack.sim, *c.stack.link, c.stack.mapper.get());
    c.injector->set_leader_lookup([&c](const core::GridCoord& cell) {
      return c.stack.overlay->bound_node(cell);
    });
    c.injector->set_corruption_applier(
        [&c](net::NodeId node, sim::CorruptionTarget target) {
          return c.detector->inject_corruption(node, target);
        });
    c.injector->arm(plan);
    c.detector->start();
    // Apply the campaign's t=0 faults before the first round begins. While
    // the detector runs, the simulator queue never drains, so every phase
    // below advances with run_until instead of run.
    c.stack.sim.run_until(c.stack.sim.now() + 0.5);

    std::printf("\nFault campaign      : %s (%zu events)\n",
                campaign_path.c_str(), plan.events.size());
    std::printf("deployment          : 8x8 grid, 200 nodes, ARQ + "
                "distributed failure detection\n");

    std::vector<core::GridCoord> members;
    std::vector<double> cvalues;
    for (const core::GridCoord& cell : core::GridTopology(8).all_coords()) {
      members.push_back(cell);
      cvalues.push_back(1.0);
    }
    for (int round = 1; round <= 2; ++round) {
      const double round_start = c.stack.sim.now();
      core::PartialResult result;
      core::group_reduce_deadline(
          *c.stack.overlay, members, {0, 0}, cvalues, core::ReduceOp::kSum,
          1.0, 200.0,
          [&result](const core::PartialResult& r) { result = r; });
      c.stack.sim.run_until(round_start + 210.0);
      std::printf("round %d sum         : %.0f from %zu/%zu contributors "
                  "(%s)\n",
                  round, result.value, result.contributors.size(),
                  result.expected.size(),
                  result.complete()
                      ? "complete"
                      : result.deadline_hit ? "deadline hit" : "partial");
    }
    // Let every outage in the plan end and the lease/election machinery
    // settle before reporting, then stop the periodic timers so the final
    // drain terminates. Corruption plans settle for the full analytic
    // stabilization bound so the audit rounds have provably had time to
    // re-converge every cell.
    const double settle =
        plan.down_horizon() + 100.0 +
        (has_corruption ? c.detector->stabilization_bound() : 0.0);
    c.stack.sim.run_until(c.stack.sim.now() + settle);
    const std::size_t unconverged =
        has_corruption ? c.detector->unconverged_cells().size() : 0;
    const std::size_t member_violations =
        has_membership ? c.detector->membership_violations().size() : 0;
    c.detector->stop();
    c.stack.sim.run();
    std::printf("leader elections    : %zu\n", c.detector->claims().size());
    std::printf("battery deaths      : %zu (planned handoffs %zu)\n",
                c.monitor->deaths().size(), c.detector->planned_handoffs());
    std::printf("arq recovery        : %llu retransmits, %llu give-ups\n",
                static_cast<unsigned long long>(
                    c.stack.arq->counters().get("arq.retransmit")),
                static_cast<unsigned long long>(
                    c.stack.arq->counters().get("arq.give_up")));
    if (has_corruption) {
      std::printf("corruption strikes  : %llu applied, %llu skipped (victim "
                  "down)\n",
                  static_cast<unsigned long long>(
                      c.injector->counters().get("fault.corrupt")),
                  static_cast<unsigned long long>(
                      c.injector->counters().get("fault.corrupt_down")));
      std::printf("audit rounds        : %llu floods, %llu route repairs, "
                  "%llu heals, %llu conflicts\n",
                  static_cast<unsigned long long>(
                      c.detector->counters().get("fd.audit")),
                  static_cast<unsigned long long>(
                      c.detector->counters().get("fd.route_repair")),
                  static_cast<unsigned long long>(
                      c.detector->counters().get("fd.audit_heal")),
                  static_cast<unsigned long long>(
                      c.detector->counters().get("fd.audit_conflict")));
      std::printf("re-convergence      : %zu cells unconverged after the "
                  "%.0fs stabilization bound\n",
                  unconverged, c.detector->stabilization_bound());
    }
    if (has_membership) {
      std::printf("membership repairs  : %llu beliefs healed, %llu rosters "
                  "reinstated\n",
                  static_cast<unsigned long long>(
                      c.detector->counters().get("fd.member_heal")),
                  static_cast<unsigned long long>(
                      c.detector->counters().get("fd.roster_heal")));
      std::printf("membership          : %zu violations after settle "
                  "(adoptions %llu, proxy binds %llu)\n",
                  member_violations,
                  static_cast<unsigned long long>(
                      c.detector->counters().get("fd.adopt")),
                  static_cast<unsigned long long>(
                      c.detector->counters().get("fd.adopt_bind")));
    }
  }

  // Freeze the profiling window before the dumps so the perf snapshot
  // covers the simulation, not the file I/O.
  if (profiling) {
    obs::profiler().disarm();
    std::uint64_t sim_events = sim.events_processed();
    double sim_time = sim.now();
    if (campaign) {
      sim_events += campaign->stack.sim.events_processed();
      sim_time = std::max(sim_time, campaign->stack.sim.now());
    }
    obs::profiler().note_sim(sim_time, sim_events);
  }

  // Observability dumps.
  if (tracing) {
    obs::tracer().set_sink(nullptr);
    obs::tracer().set_mask(0);
  }
  if (stream) {
    if (!stream->close()) {
      std::fprintf(stderr, "error: streaming trace to %s failed: %s\n",
                   trace_out.c_str(), stream->error().c_str());
      return 1;
    }
    std::printf("streamed trace      : %llu events, %llu segments, %llu "
                "bytes -> %s (%s)\n",
                static_cast<unsigned long long>(stream->events()),
                static_cast<unsigned long long>(stream->segments()),
                static_cast<unsigned long long>(stream->bytes_written()),
                trace_out.c_str(),
                trace_format == "jsonl" ? "jsonl" : "wtr");
  }
  if (ring_wanted) {
    const auto events = sink.events();
    if (!trace_path.empty()) {
      std::ofstream out(trace_path);
      obs::write_jsonl(events, out);
      if (out) {
        std::printf("trace               : %zu events -> %s (JSONL%s)\n",
                    events.size(), trace_path.c_str(),
                    sink.dropped() > 0 ? ", oldest dropped" : "");
      } else {
        std::fprintf(stderr, "error: cannot write trace to %s\n",
                     trace_path.c_str());
        return 1;
      }
    }
    if (!chrome_path.empty()) {
      std::ofstream out(chrome_path);
      obs::write_chrome_trace(events, out,
                              profiling ? &obs::profiler() : nullptr);
      if (out) {
        std::printf("chrome trace        : %s (load in about://tracing)\n",
                    chrome_path.c_str());
      } else {
        std::fprintf(stderr, "error: cannot write chrome trace to %s\n",
                     chrome_path.c_str());
        return 1;
      }
    }
  }
  if (!metrics_path.empty()) {
    obs::MetricsRegistry registry;
    vnet.register_metrics(registry);
    if (ring_wanted) sink.register_metrics(registry);
    if (stream) stream->register_metrics(registry);
    if (profiling) {
      obs::profiler().register_metrics(registry);
      sim.register_metrics(registry);
      if (campaign) {
        campaign->stack.sim.register_metrics(registry, "kernel.campaign");
      }
    }
    if (campaign) {
      campaign->stack.register_metrics(registry);
      campaign->injector->register_metrics(registry);
      campaign->detector->register_metrics(registry);
      campaign->monitor->register_metrics(registry);
    }
    std::ofstream out(metrics_path);
    registry.write_json(out);
    if (out) {
      std::printf("metrics snapshot    : %s (energy totals match the report "
                  "above)\n",
                  metrics_path.c_str());
    } else {
      std::fprintf(stderr, "error: cannot write metrics to %s\n",
                   metrics_path.c_str());
      return 1;
    }
  }
  if (profiling) {
    std::ofstream out(profile_path);
    out << obs::profiler().to_json() << "\n";
    if (out) {
      std::printf("perf profile        : %s (read with wsn-inspect perf)\n",
                  profile_path.c_str());
    } else {
      std::fprintf(stderr, "error: cannot write profile to %s\n",
                   profile_path.c_str());
      return 1;
    }
  }
  return 0;
}
