// Quickstart: the whole methodology in ~60 lines.
//
//   1. Define the virtual architecture (grid + uniform cost model).
//   2. Sample a synthetic temperature field and threshold it.
//   3. Run the synthesized topographic-querying program on the virtual grid.
//   4. Read the answers (region count, areas) and the predicted costs.
//
// Build & run:  ./examples/quickstart
#include <cstdio>

#include "analysis/analytical.h"
#include "analysis/metrics.h"
#include "app/field.h"
#include "app/queries.h"
#include "app/topographic.h"
#include "core/virtual_network.h"

int main() {
  using namespace wsn;

  // 1. A 16x16 virtual grid with the paper's unit cost model.
  const std::size_t side = 16;
  sim::Simulator sim(/*seed=*/2004);
  core::VirtualNetwork vnet(sim, core::GridTopology(side),
                            core::uniform_cost_model());

  // 2. Three Gaussian hot spots over the unit square; feature = reading
  //    above 0.5.
  sim::Rng field_rng(7);
  const app::FeatureGrid field =
      app::threshold_sample(app::hotspot_field(3, field_rng), side, 0.5);
  std::printf("Thresholded field ('#' = feature node):\n%s\n",
              field.render().c_str());

  // 3. One round of identification-and-labeling of homogeneous regions.
  const app::TopographicOutcome outcome = app::run_topographic_query(vnet, field);

  // 4. Topographic queries over the stored result.
  std::printf("regions found       : %zu\n", app::count_regions(outcome.regions));
  std::printf("total feature area  : %llu cells\n",
              static_cast<unsigned long long>(
                  app::total_feature_area(outcome.regions)));
  if (const auto largest = app::largest_region(outcome.regions)) {
    std::printf("largest region      : %llu cells, rows %d..%d, cols %d..%d\n",
                static_cast<unsigned long long>(largest->area),
                largest->bounds.row_min, largest->bounds.row_max,
                largest->bounds.col_min, largest->bounds.col_max);
  }

  // Costs: measured on the virtual architecture vs the closed form.
  const auto report = analysis::energy_report(vnet.ledger());
  const auto predicted =
      analysis::predict_quadtree(side, core::uniform_cost_model());
  std::printf("\nround latency       : %.1f (predicted %.1f)\n",
              outcome.round.finished_at, predicted.latency);
  std::printf("total energy        : %.0f (predicted %.0f)\n", report.total,
              predicted.total_energy);
  std::printf("network messages    : %llu (predicted %llu)\n",
              static_cast<unsigned long long>(outcome.round.messages_sent),
              static_cast<unsigned long long>(predicted.messages));
  return 0;
}
