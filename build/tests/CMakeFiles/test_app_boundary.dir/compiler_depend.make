# Empty compiler generated dependencies file for test_app_boundary.
# This may be replaced when dependencies are built.
