file(REMOVE_RECURSE
  "CMakeFiles/test_app_boundary.dir/test_app_boundary.cpp.o"
  "CMakeFiles/test_app_boundary.dir/test_app_boundary.cpp.o.d"
  "test_app_boundary"
  "test_app_boundary.pdb"
  "test_app_boundary[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_app_boundary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
