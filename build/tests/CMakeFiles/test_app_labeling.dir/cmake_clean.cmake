file(REMOVE_RECURSE
  "CMakeFiles/test_app_labeling.dir/test_app_labeling.cpp.o"
  "CMakeFiles/test_app_labeling.dir/test_app_labeling.cpp.o.d"
  "test_app_labeling"
  "test_app_labeling.pdb"
  "test_app_labeling[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_app_labeling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
