# Empty dependencies file for test_app_labeling.
# This may be replaced when dependencies are built.
