# Empty compiler generated dependencies file for test_protocol_sweep.
# This may be replaced when dependencies are built.
