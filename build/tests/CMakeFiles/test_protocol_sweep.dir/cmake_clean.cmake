file(REMOVE_RECURSE
  "CMakeFiles/test_protocol_sweep.dir/test_protocol_sweep.cpp.o"
  "CMakeFiles/test_protocol_sweep.dir/test_protocol_sweep.cpp.o.d"
  "test_protocol_sweep"
  "test_protocol_sweep.pdb"
  "test_protocol_sweep[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_protocol_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
