file(REMOVE_RECURSE
  "CMakeFiles/test_regions_tree.dir/test_regions_tree.cpp.o"
  "CMakeFiles/test_regions_tree.dir/test_regions_tree.cpp.o.d"
  "test_regions_tree"
  "test_regions_tree.pdb"
  "test_regions_tree[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_regions_tree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
