# Empty compiler generated dependencies file for test_regions_tree.
# This may be replaced when dependencies are built.
