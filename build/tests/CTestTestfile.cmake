# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_net[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_emulation[1]_include.cmake")
include("/root/repo/build/tests/test_taskgraph[1]_include.cmake")
include("/root/repo/build/tests/test_synthesis[1]_include.cmake")
include("/root/repo/build/tests/test_app_labeling[1]_include.cmake")
include("/root/repo/build/tests/test_app_boundary[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_property[1]_include.cmake")
include("/root/repo/build/tests/test_extensions[1]_include.cmake")
include("/root/repo/build/tests/test_tracking[1]_include.cmake")
include("/root/repo/build/tests/test_regions_tree[1]_include.cmake")
include("/root/repo/build/tests/test_analysis[1]_include.cmake")
include("/root/repo/build/tests/test_protocol_sweep[1]_include.cmake")
include("/root/repo/build/tests/test_storage[1]_include.cmake")
include("/root/repo/build/tests/test_incremental[1]_include.cmake")
include("/root/repo/build/tests/test_edge_cases[1]_include.cmake")
