file(REMOVE_RECURSE
  "CMakeFiles/wsn_core.dir/grid_topology.cpp.o"
  "CMakeFiles/wsn_core.dir/grid_topology.cpp.o.d"
  "CMakeFiles/wsn_core.dir/groups.cpp.o"
  "CMakeFiles/wsn_core.dir/groups.cpp.o.d"
  "CMakeFiles/wsn_core.dir/primitives.cpp.o"
  "CMakeFiles/wsn_core.dir/primitives.cpp.o.d"
  "CMakeFiles/wsn_core.dir/regions.cpp.o"
  "CMakeFiles/wsn_core.dir/regions.cpp.o.d"
  "CMakeFiles/wsn_core.dir/virtual_network.cpp.o"
  "CMakeFiles/wsn_core.dir/virtual_network.cpp.o.d"
  "libwsn_core.a"
  "libwsn_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wsn_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
