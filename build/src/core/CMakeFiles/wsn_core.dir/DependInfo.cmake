
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/grid_topology.cpp" "src/core/CMakeFiles/wsn_core.dir/grid_topology.cpp.o" "gcc" "src/core/CMakeFiles/wsn_core.dir/grid_topology.cpp.o.d"
  "/root/repo/src/core/groups.cpp" "src/core/CMakeFiles/wsn_core.dir/groups.cpp.o" "gcc" "src/core/CMakeFiles/wsn_core.dir/groups.cpp.o.d"
  "/root/repo/src/core/primitives.cpp" "src/core/CMakeFiles/wsn_core.dir/primitives.cpp.o" "gcc" "src/core/CMakeFiles/wsn_core.dir/primitives.cpp.o.d"
  "/root/repo/src/core/regions.cpp" "src/core/CMakeFiles/wsn_core.dir/regions.cpp.o" "gcc" "src/core/CMakeFiles/wsn_core.dir/regions.cpp.o.d"
  "/root/repo/src/core/virtual_network.cpp" "src/core/CMakeFiles/wsn_core.dir/virtual_network.cpp.o" "gcc" "src/core/CMakeFiles/wsn_core.dir/virtual_network.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/wsn_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
