# Empty compiler generated dependencies file for wsn_net.
# This may be replaced when dependencies are built.
