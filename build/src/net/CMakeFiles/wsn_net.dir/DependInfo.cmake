
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/deployment.cpp" "src/net/CMakeFiles/wsn_net.dir/deployment.cpp.o" "gcc" "src/net/CMakeFiles/wsn_net.dir/deployment.cpp.o.d"
  "/root/repo/src/net/network_graph.cpp" "src/net/CMakeFiles/wsn_net.dir/network_graph.cpp.o" "gcc" "src/net/CMakeFiles/wsn_net.dir/network_graph.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
