file(REMOVE_RECURSE
  "libwsn_taskgraph.a"
)
