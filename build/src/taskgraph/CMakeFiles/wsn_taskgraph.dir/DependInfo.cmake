
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/taskgraph/mapping.cpp" "src/taskgraph/CMakeFiles/wsn_taskgraph.dir/mapping.cpp.o" "gcc" "src/taskgraph/CMakeFiles/wsn_taskgraph.dir/mapping.cpp.o.d"
  "/root/repo/src/taskgraph/quadtree.cpp" "src/taskgraph/CMakeFiles/wsn_taskgraph.dir/quadtree.cpp.o" "gcc" "src/taskgraph/CMakeFiles/wsn_taskgraph.dir/quadtree.cpp.o.d"
  "/root/repo/src/taskgraph/task_graph.cpp" "src/taskgraph/CMakeFiles/wsn_taskgraph.dir/task_graph.cpp.o" "gcc" "src/taskgraph/CMakeFiles/wsn_taskgraph.dir/task_graph.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/wsn_core.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/wsn_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
