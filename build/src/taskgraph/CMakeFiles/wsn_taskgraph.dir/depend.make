# Empty dependencies file for wsn_taskgraph.
# This may be replaced when dependencies are built.
