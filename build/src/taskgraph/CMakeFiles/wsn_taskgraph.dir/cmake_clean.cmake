file(REMOVE_RECURSE
  "CMakeFiles/wsn_taskgraph.dir/mapping.cpp.o"
  "CMakeFiles/wsn_taskgraph.dir/mapping.cpp.o.d"
  "CMakeFiles/wsn_taskgraph.dir/quadtree.cpp.o"
  "CMakeFiles/wsn_taskgraph.dir/quadtree.cpp.o.d"
  "CMakeFiles/wsn_taskgraph.dir/task_graph.cpp.o"
  "CMakeFiles/wsn_taskgraph.dir/task_graph.cpp.o.d"
  "libwsn_taskgraph.a"
  "libwsn_taskgraph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wsn_taskgraph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
