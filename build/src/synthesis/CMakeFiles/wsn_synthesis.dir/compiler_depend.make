# Empty compiler generated dependencies file for wsn_synthesis.
# This may be replaced when dependencies are built.
