file(REMOVE_RECURSE
  "libwsn_synthesis.a"
)
