file(REMOVE_RECURSE
  "CMakeFiles/wsn_synthesis.dir/program.cpp.o"
  "CMakeFiles/wsn_synthesis.dir/program.cpp.o.d"
  "CMakeFiles/wsn_synthesis.dir/spec.cpp.o"
  "CMakeFiles/wsn_synthesis.dir/spec.cpp.o.d"
  "CMakeFiles/wsn_synthesis.dir/synthesizer.cpp.o"
  "CMakeFiles/wsn_synthesis.dir/synthesizer.cpp.o.d"
  "libwsn_synthesis.a"
  "libwsn_synthesis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wsn_synthesis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
