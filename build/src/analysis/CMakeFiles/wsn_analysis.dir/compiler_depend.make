# Empty compiler generated dependencies file for wsn_analysis.
# This may be replaced when dependencies are built.
