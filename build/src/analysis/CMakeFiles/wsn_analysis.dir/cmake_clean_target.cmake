file(REMOVE_RECURSE
  "libwsn_analysis.a"
)
