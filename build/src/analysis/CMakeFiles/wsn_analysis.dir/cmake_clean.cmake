file(REMOVE_RECURSE
  "CMakeFiles/wsn_analysis.dir/analytical.cpp.o"
  "CMakeFiles/wsn_analysis.dir/analytical.cpp.o.d"
  "libwsn_analysis.a"
  "libwsn_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wsn_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
