# Empty dependencies file for wsn_emulation.
# This may be replaced when dependencies are built.
