file(REMOVE_RECURSE
  "libwsn_emulation.a"
)
