file(REMOVE_RECURSE
  "CMakeFiles/wsn_emulation.dir/cell_mapper.cpp.o"
  "CMakeFiles/wsn_emulation.dir/cell_mapper.cpp.o.d"
  "CMakeFiles/wsn_emulation.dir/emulation_protocol.cpp.o"
  "CMakeFiles/wsn_emulation.dir/emulation_protocol.cpp.o.d"
  "CMakeFiles/wsn_emulation.dir/leader_binding.cpp.o"
  "CMakeFiles/wsn_emulation.dir/leader_binding.cpp.o.d"
  "CMakeFiles/wsn_emulation.dir/overlay_network.cpp.o"
  "CMakeFiles/wsn_emulation.dir/overlay_network.cpp.o.d"
  "CMakeFiles/wsn_emulation.dir/tree_overlay.cpp.o"
  "CMakeFiles/wsn_emulation.dir/tree_overlay.cpp.o.d"
  "libwsn_emulation.a"
  "libwsn_emulation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wsn_emulation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
