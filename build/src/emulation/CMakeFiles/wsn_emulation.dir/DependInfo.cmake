
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/emulation/cell_mapper.cpp" "src/emulation/CMakeFiles/wsn_emulation.dir/cell_mapper.cpp.o" "gcc" "src/emulation/CMakeFiles/wsn_emulation.dir/cell_mapper.cpp.o.d"
  "/root/repo/src/emulation/emulation_protocol.cpp" "src/emulation/CMakeFiles/wsn_emulation.dir/emulation_protocol.cpp.o" "gcc" "src/emulation/CMakeFiles/wsn_emulation.dir/emulation_protocol.cpp.o.d"
  "/root/repo/src/emulation/leader_binding.cpp" "src/emulation/CMakeFiles/wsn_emulation.dir/leader_binding.cpp.o" "gcc" "src/emulation/CMakeFiles/wsn_emulation.dir/leader_binding.cpp.o.d"
  "/root/repo/src/emulation/overlay_network.cpp" "src/emulation/CMakeFiles/wsn_emulation.dir/overlay_network.cpp.o" "gcc" "src/emulation/CMakeFiles/wsn_emulation.dir/overlay_network.cpp.o.d"
  "/root/repo/src/emulation/tree_overlay.cpp" "src/emulation/CMakeFiles/wsn_emulation.dir/tree_overlay.cpp.o" "gcc" "src/emulation/CMakeFiles/wsn_emulation.dir/tree_overlay.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/wsn_core.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/wsn_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
