file(REMOVE_RECURSE
  "CMakeFiles/wsn_app.dir/boundary.cpp.o"
  "CMakeFiles/wsn_app.dir/boundary.cpp.o.d"
  "CMakeFiles/wsn_app.dir/centralized.cpp.o"
  "CMakeFiles/wsn_app.dir/centralized.cpp.o.d"
  "CMakeFiles/wsn_app.dir/contours.cpp.o"
  "CMakeFiles/wsn_app.dir/contours.cpp.o.d"
  "CMakeFiles/wsn_app.dir/dnc.cpp.o"
  "CMakeFiles/wsn_app.dir/dnc.cpp.o.d"
  "CMakeFiles/wsn_app.dir/feature_grid.cpp.o"
  "CMakeFiles/wsn_app.dir/feature_grid.cpp.o.d"
  "CMakeFiles/wsn_app.dir/field.cpp.o"
  "CMakeFiles/wsn_app.dir/field.cpp.o.d"
  "CMakeFiles/wsn_app.dir/incremental.cpp.o"
  "CMakeFiles/wsn_app.dir/incremental.cpp.o.d"
  "CMakeFiles/wsn_app.dir/labeling.cpp.o"
  "CMakeFiles/wsn_app.dir/labeling.cpp.o.d"
  "CMakeFiles/wsn_app.dir/queries.cpp.o"
  "CMakeFiles/wsn_app.dir/queries.cpp.o.d"
  "CMakeFiles/wsn_app.dir/serialize.cpp.o"
  "CMakeFiles/wsn_app.dir/serialize.cpp.o.d"
  "CMakeFiles/wsn_app.dir/storage.cpp.o"
  "CMakeFiles/wsn_app.dir/storage.cpp.o.d"
  "CMakeFiles/wsn_app.dir/topographic.cpp.o"
  "CMakeFiles/wsn_app.dir/topographic.cpp.o.d"
  "CMakeFiles/wsn_app.dir/tracking.cpp.o"
  "CMakeFiles/wsn_app.dir/tracking.cpp.o.d"
  "libwsn_app.a"
  "libwsn_app.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wsn_app.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
