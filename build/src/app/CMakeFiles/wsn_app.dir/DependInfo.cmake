
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/app/boundary.cpp" "src/app/CMakeFiles/wsn_app.dir/boundary.cpp.o" "gcc" "src/app/CMakeFiles/wsn_app.dir/boundary.cpp.o.d"
  "/root/repo/src/app/centralized.cpp" "src/app/CMakeFiles/wsn_app.dir/centralized.cpp.o" "gcc" "src/app/CMakeFiles/wsn_app.dir/centralized.cpp.o.d"
  "/root/repo/src/app/contours.cpp" "src/app/CMakeFiles/wsn_app.dir/contours.cpp.o" "gcc" "src/app/CMakeFiles/wsn_app.dir/contours.cpp.o.d"
  "/root/repo/src/app/dnc.cpp" "src/app/CMakeFiles/wsn_app.dir/dnc.cpp.o" "gcc" "src/app/CMakeFiles/wsn_app.dir/dnc.cpp.o.d"
  "/root/repo/src/app/feature_grid.cpp" "src/app/CMakeFiles/wsn_app.dir/feature_grid.cpp.o" "gcc" "src/app/CMakeFiles/wsn_app.dir/feature_grid.cpp.o.d"
  "/root/repo/src/app/field.cpp" "src/app/CMakeFiles/wsn_app.dir/field.cpp.o" "gcc" "src/app/CMakeFiles/wsn_app.dir/field.cpp.o.d"
  "/root/repo/src/app/incremental.cpp" "src/app/CMakeFiles/wsn_app.dir/incremental.cpp.o" "gcc" "src/app/CMakeFiles/wsn_app.dir/incremental.cpp.o.d"
  "/root/repo/src/app/labeling.cpp" "src/app/CMakeFiles/wsn_app.dir/labeling.cpp.o" "gcc" "src/app/CMakeFiles/wsn_app.dir/labeling.cpp.o.d"
  "/root/repo/src/app/queries.cpp" "src/app/CMakeFiles/wsn_app.dir/queries.cpp.o" "gcc" "src/app/CMakeFiles/wsn_app.dir/queries.cpp.o.d"
  "/root/repo/src/app/serialize.cpp" "src/app/CMakeFiles/wsn_app.dir/serialize.cpp.o" "gcc" "src/app/CMakeFiles/wsn_app.dir/serialize.cpp.o.d"
  "/root/repo/src/app/storage.cpp" "src/app/CMakeFiles/wsn_app.dir/storage.cpp.o" "gcc" "src/app/CMakeFiles/wsn_app.dir/storage.cpp.o.d"
  "/root/repo/src/app/topographic.cpp" "src/app/CMakeFiles/wsn_app.dir/topographic.cpp.o" "gcc" "src/app/CMakeFiles/wsn_app.dir/topographic.cpp.o.d"
  "/root/repo/src/app/tracking.cpp" "src/app/CMakeFiles/wsn_app.dir/tracking.cpp.o" "gcc" "src/app/CMakeFiles/wsn_app.dir/tracking.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/synthesis/CMakeFiles/wsn_synthesis.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/wsn_core.dir/DependInfo.cmake"
  "/root/repo/build/src/taskgraph/CMakeFiles/wsn_taskgraph.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/wsn_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
