# Empty compiler generated dependencies file for topographic_mapping.
# This may be replaced when dependencies are built.
