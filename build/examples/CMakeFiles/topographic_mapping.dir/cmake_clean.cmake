file(REMOVE_RECURSE
  "CMakeFiles/topographic_mapping.dir/topographic_mapping.cpp.o"
  "CMakeFiles/topographic_mapping.dir/topographic_mapping.cpp.o.d"
  "topographic_mapping"
  "topographic_mapping.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/topographic_mapping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
