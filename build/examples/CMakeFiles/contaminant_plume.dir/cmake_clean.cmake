file(REMOVE_RECURSE
  "CMakeFiles/contaminant_plume.dir/contaminant_plume.cpp.o"
  "CMakeFiles/contaminant_plume.dir/contaminant_plume.cpp.o.d"
  "contaminant_plume"
  "contaminant_plume.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/contaminant_plume.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
