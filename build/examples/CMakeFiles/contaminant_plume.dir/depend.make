# Empty dependencies file for contaminant_plume.
# This may be replaced when dependencies are built.
