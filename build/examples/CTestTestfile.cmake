# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_topographic_mapping "/root/repo/build/examples/topographic_mapping")
set_tests_properties(example_topographic_mapping PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_contaminant_plume "/root/repo/build/examples/contaminant_plume")
set_tests_properties(example_contaminant_plume PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_fleet_health "/root/repo/build/examples/fleet_health")
set_tests_properties(example_fleet_health PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_target_tracking "/root/repo/build/examples/target_tracking")
set_tests_properties(example_target_tracking PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
