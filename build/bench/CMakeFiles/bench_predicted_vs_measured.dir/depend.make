# Empty dependencies file for bench_predicted_vs_measured.
# This may be replaced when dependencies are built.
