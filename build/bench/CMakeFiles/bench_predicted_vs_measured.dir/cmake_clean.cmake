file(REMOVE_RECURSE
  "CMakeFiles/bench_predicted_vs_measured.dir/bench_predicted_vs_measured.cpp.o"
  "CMakeFiles/bench_predicted_vs_measured.dir/bench_predicted_vs_measured.cpp.o.d"
  "bench_predicted_vs_measured"
  "bench_predicted_vs_measured.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_predicted_vs_measured.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
