
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_lifetime.cpp" "bench/CMakeFiles/bench_lifetime.dir/bench_lifetime.cpp.o" "gcc" "bench/CMakeFiles/bench_lifetime.dir/bench_lifetime.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/analysis/CMakeFiles/wsn_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/app/CMakeFiles/wsn_app.dir/DependInfo.cmake"
  "/root/repo/build/src/synthesis/CMakeFiles/wsn_synthesis.dir/DependInfo.cmake"
  "/root/repo/build/src/taskgraph/CMakeFiles/wsn_taskgraph.dir/DependInfo.cmake"
  "/root/repo/build/src/emulation/CMakeFiles/wsn_emulation.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/wsn_core.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/wsn_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
