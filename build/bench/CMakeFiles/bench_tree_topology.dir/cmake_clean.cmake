file(REMOVE_RECURSE
  "CMakeFiles/bench_tree_topology.dir/bench_tree_topology.cpp.o"
  "CMakeFiles/bench_tree_topology.dir/bench_tree_topology.cpp.o.d"
  "bench_tree_topology"
  "bench_tree_topology.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tree_topology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
