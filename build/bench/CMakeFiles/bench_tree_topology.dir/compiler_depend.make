# Empty compiler generated dependencies file for bench_tree_topology.
# This may be replaced when dependencies are built.
