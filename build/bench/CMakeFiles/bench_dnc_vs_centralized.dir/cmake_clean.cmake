file(REMOVE_RECURSE
  "CMakeFiles/bench_dnc_vs_centralized.dir/bench_dnc_vs_centralized.cpp.o"
  "CMakeFiles/bench_dnc_vs_centralized.dir/bench_dnc_vs_centralized.cpp.o.d"
  "bench_dnc_vs_centralized"
  "bench_dnc_vs_centralized.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_dnc_vs_centralized.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
