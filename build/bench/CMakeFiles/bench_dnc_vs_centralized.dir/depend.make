# Empty dependencies file for bench_dnc_vs_centralized.
# This may be replaced when dependencies are built.
