# Empty compiler generated dependencies file for bench_stored_queries.
# This may be replaced when dependencies are built.
