file(REMOVE_RECURSE
  "CMakeFiles/bench_stored_queries.dir/bench_stored_queries.cpp.o"
  "CMakeFiles/bench_stored_queries.dir/bench_stored_queries.cpp.o.d"
  "bench_stored_queries"
  "bench_stored_queries.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_stored_queries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
