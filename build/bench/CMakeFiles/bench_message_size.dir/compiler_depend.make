# Empty compiler generated dependencies file for bench_message_size.
# This may be replaced when dependencies are built.
