# Empty compiler generated dependencies file for bench_group_comm.
# This may be replaced when dependencies are built.
