file(REMOVE_RECURSE
  "CMakeFiles/bench_topology_emulation.dir/bench_topology_emulation.cpp.o"
  "CMakeFiles/bench_topology_emulation.dir/bench_topology_emulation.cpp.o.d"
  "bench_topology_emulation"
  "bench_topology_emulation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_topology_emulation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
