# Empty dependencies file for bench_leader_binding.
# This may be replaced when dependencies are built.
