file(REMOVE_RECURSE
  "CMakeFiles/bench_leader_binding.dir/bench_leader_binding.cpp.o"
  "CMakeFiles/bench_leader_binding.dir/bench_leader_binding.cpp.o.d"
  "bench_leader_binding"
  "bench_leader_binding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_leader_binding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
