file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_quadtree.dir/bench_fig2_quadtree.cpp.o"
  "CMakeFiles/bench_fig2_quadtree.dir/bench_fig2_quadtree.cpp.o.d"
  "bench_fig2_quadtree"
  "bench_fig2_quadtree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_quadtree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
