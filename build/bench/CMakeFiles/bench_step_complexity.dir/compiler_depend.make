# Empty compiler generated dependencies file for bench_step_complexity.
# This may be replaced when dependencies are built.
