file(REMOVE_RECURSE
  "CMakeFiles/bench_step_complexity.dir/bench_step_complexity.cpp.o"
  "CMakeFiles/bench_step_complexity.dir/bench_step_complexity.cpp.o.d"
  "bench_step_complexity"
  "bench_step_complexity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_step_complexity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
