file(REMOVE_RECURSE
  "CMakeFiles/bench_fanout_ablation.dir/bench_fanout_ablation.cpp.o"
  "CMakeFiles/bench_fanout_ablation.dir/bench_fanout_ablation.cpp.o.d"
  "bench_fanout_ablation"
  "bench_fanout_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fanout_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
