// E17 (Section 4.1 extension): "every 'round' of sampling triggers one
// execution of the entire task graph" - unless most readings are unchanged.
// Incremental re-aggregation re-executes the graph only along changed
// root-to-leaf paths, reusing cached block summaries everywhere else.
//
// Drives a drifting plume over 12 rounds and compares full-round cost vs
// incremental cost; correctness is checked against the reference labeler
// every round.
#include <cstdio>

#include "analysis/table.h"
#include "app/field.h"
#include "app/incremental.h"
#include "app/labeling.h"
#include "bench/bench_common.h"
#include "core/virtual_network.h"

int main(int argc, char** argv) {
  using namespace wsn;
  bench::JsonWriter json(bench::json_path_from_args(argc, argv));
  bench::print_header(
      "E17 / Sec 4.1 ext", "Incremental re-aggregation across rounds",
      "delta rounds touch only changed paths; unchanged quadrants reuse "
      "cached boundary summaries");

  const std::size_t side = 32;
  sim::Simulator sim(1);
  core::VirtualNetwork vnet(sim, core::GridTopology(side),
                            core::uniform_cost_model());
  app::IncrementalAggregator agg(vnet);

  analysis::Table table({"round", "changed leaves", "delta msgs", "full msgs",
                         "msg saving%", "delta merges", "regions", "correct"});
  double prev_energy = 0.0;
  sim::Summary savings;
  for (int round = 0; round < 12; ++round) {
    const double u = 0.05 + 0.06 * round;
    const app::FeatureGrid grid = app::threshold_sample(
        app::plume_field(u, 0.5, 0.1, 0.07, 0.9), side, 0.25);
    const auto [regions, stats] = agg.round(grid);
    const bool correct =
        regions.size() == app::label_regions(grid).region_count();
    const std::uint64_t full_msgs = side * side - 1;
    const double saving =
        100.0 * (1.0 - static_cast<double>(stats.messages) /
                           static_cast<double>(full_msgs));
    if (!stats.full_round) savings.add(saving);
    table.row({analysis::Table::num(round),
               analysis::Table::num(stats.changed_leaves),
               analysis::Table::num(stats.messages),
               analysis::Table::num(full_msgs),
               stats.full_round ? "(cold)" : analysis::Table::num(saving, 1),
               analysis::Table::num(stats.merges),
               analysis::Table::num(regions.size()), correct ? "yes" : "NO"});
    json.row("incremental",
             {{"round", static_cast<std::uint64_t>(round)},
              {"changed_leaves", static_cast<std::uint64_t>(stats.changed_leaves)},
              {"messages", static_cast<std::uint64_t>(stats.messages)},
              {"merges", static_cast<std::uint64_t>(stats.merges)},
              {"regions", static_cast<std::uint64_t>(regions.size())},
              {"correct", static_cast<std::uint64_t>(correct ? 1 : 0)}});
    prev_energy = vnet.ledger().total();
  }
  (void)prev_energy;
  std::printf("%s\n", table.str().c_str());
  std::printf(
      "Mean message saving over delta rounds: %.1f%%\n\n"
      "Check: the cold round costs exactly the one-shot program (side^2-1\n"
      "messages); every subsequent round re-sends only along paths with a\n"
      "changed leaf, saving the bulk of the traffic while producing the\n"
      "exact reference labeling - the event-driven benefit Section 4.1\n"
      "gestures at, realized inside the task-graph model.\n",
      savings.mean());
  return 0;
}
