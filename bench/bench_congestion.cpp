// E12 (ablation; Sections 2 & 4.3): the uniform cost model assumes
// contention-free links, yet the paper concedes that "latency of message
// delivery is unpredictable in typical sensor networks". This ablation adds
// per-node transmitter serialization to the virtual layer and re-runs E5:
// the quad-tree's spatial parallelism survives contention, the centralized
// funnel does not - sharpening the design-flow decision the methodology is
// meant to enable.
#include <cstdio>

#include "analysis/table.h"
#include "app/centralized.h"
#include "app/field.h"
#include "app/topographic.h"
#include "bench/bench_common.h"
#include "core/virtual_network.h"

namespace {

using namespace wsn;

struct RunResult {
  double latency;
  std::uint64_t queued;
};

RunResult run(std::size_t side, bool centralized, core::Congestion congestion) {
  const app::FeatureGrid grid = app::checkerboard_grid(side);
  sim::Simulator sim(1);
  core::VirtualNetwork vnet(sim, core::GridTopology(side),
                            core::uniform_cost_model(),
                            core::LeaderPlacement::kNorthWest, congestion);
  double latency = 0;
  if (centralized) {
    latency = app::run_centralized_query(vnet, grid).finished_at;
  } else {
    latency = app::run_topographic_query(vnet, grid).round.finished_at;
  }
  return {latency, vnet.counters().get("vnet.queued")};
}

}  // namespace

int main(int argc, char** argv) {
  bench::print_header(
      "E12 / ablation", "Contention sensitivity of the cost model",
      "per-node transmitter serialization: in-network merging keeps its "
      "parallelism, the centralized funnel serializes");
  bench::JsonWriter json(bench::json_path_from_args(argc, argv));

  analysis::Table table({"side", "algo", "latency(free)", "latency(busy)",
                         "slowdown", "queued pkts"});
  for (std::size_t side : {4u, 8u, 16u, 32u}) {
    for (bool centralized : {false, true}) {
      const RunResult free = run(side, centralized, core::Congestion::kNone);
      const RunResult busy =
          run(side, centralized, core::Congestion::kNodeSerialized);
      table.row({analysis::Table::num(side),
                 centralized ? "centralized" : "quad-tree",
                 analysis::Table::num(free.latency, 1),
                 analysis::Table::num(busy.latency, 1),
                 analysis::Table::num(busy.latency / free.latency, 2),
                 analysis::Table::num(busy.queued)});
      json.row("congestion",
               {{"side", static_cast<std::uint64_t>(side)},
                {"algo", centralized ? "centralized" : "quad-tree"},
                {"latency_free", free.latency},
                {"latency_busy", busy.latency},
                {"slowdown", busy.latency / free.latency},
                {"queued", busy.queued}});
    }
  }
  std::printf("%s\n", table.str().c_str());
  std::printf(
      "Check: the quad-tree's slowdown stays near 1 (siblings transmit\n"
      "through disjoint relays); the centralized slowdown grows with N as\n"
      "messages queue behind each other in the sink's corner. The uniform\n"
      "cost model is safe exactly when traffic is spatially balanced -\n"
      "which the divide-and-conquer mapping guarantees by construction.\n");
  return 0;
}
