// E9 (Section 2, the methodology's core promise): "theoretical performance
// analysis corresponds to real performance measurements."
//
// Three layers for the same topographic query:
//   predicted  - closed-form analysis on the virtual architecture,
//   virtual    - the synthesized program executed on the virtual grid,
//   physical   - the same program executed on an arbitrary deployment via
//                the Section 5 runtime (topology emulation + binding).
// Reports latency, energy, and messages per layer plus the emulation
// stretch that explains the virtual-to-physical gap.
#include <cstdio>

#include "analysis/analytical.h"
#include "analysis/metrics.h"
#include "analysis/table.h"
#include "app/field.h"
#include "app/topographic.h"
#include "bench/bench_common.h"
#include "core/virtual_network.h"

int main(int argc, char** argv) {
  using namespace wsn;
  bench::print_header(
      "E9 / Sec 2", "Predicted vs virtual vs physical performance",
      "the virtual architecture's analysis must track execution on the "
      "underlying network, modulo the emulation stretch");
  bench::JsonWriter json(bench::json_path_from_args(argc, argv));

  analysis::Table table({"side", "node/cell", "layer", "latency", "energy",
                         "msgs", "stretch"});
  for (std::size_t side : {4u, 8u}) {
    const app::FeatureGrid grid = app::full_grid(side);
    const auto predicted =
        analysis::predict_quadtree(side, core::uniform_cost_model());
    table.row({analysis::Table::num(side), "-", "predicted",
               analysis::Table::num(predicted.latency, 1),
               analysis::Table::num(predicted.total_energy, 0),
               analysis::Table::num(predicted.messages), "1.00"});
    json.row("predicted_vs_measured",
             {{"side", static_cast<std::uint64_t>(side)},
              {"layer", "predicted"},
              {"latency", predicted.latency},
              {"energy", predicted.total_energy},
              {"messages", static_cast<std::uint64_t>(predicted.messages)}});

    sim::Simulator vsim(1);
    core::VirtualNetwork vnet(vsim, core::GridTopology(side),
                              core::uniform_cost_model());
    const auto v = app::run_topographic_query(vnet, grid);
    table.row({analysis::Table::num(side), "-", "virtual",
               analysis::Table::num(v.round.finished_at, 1),
               analysis::Table::num(vnet.ledger().total(), 0),
               analysis::Table::num(v.round.messages_sent), "1.00"});
    json.row("predicted_vs_measured",
             {{"side", static_cast<std::uint64_t>(side)},
              {"layer", "virtual"},
              {"latency", v.round.finished_at},
              {"energy", vnet.ledger().total()},
              {"messages",
               static_cast<std::uint64_t>(v.round.messages_sent)}});

    for (std::size_t per_cell : {8u, 16u}) {
      double wall_ms = 0.0;
      bench::PhysicalStack stack(side, side * side * per_cell, 1.3,
                                 42 + side + per_cell);
      if (!stack.healthy()) continue;
      const double e_before = stack.ledger->total();
      const auto p = [&] {
        obs::ScopedTimer timer(&wall_ms);
        return app::run_topographic_query(*stack.overlay, grid);
      }();
      const double stretch =
          static_cast<double>(stack.overlay->physical_hops()) /
          static_cast<double>(stack.overlay->virtual_hops());
      table.row(
          {analysis::Table::num(side), analysis::Table::num(per_cell),
           "physical",
           analysis::Table::num(p.round.finished_at - stack.setup_time, 1),
           analysis::Table::num(stack.ledger->total() - e_before, 0),
           analysis::Table::num(p.round.messages_sent),
           analysis::Table::num(stretch, 2)});
      json.row("predicted_vs_measured",
               {{"side", static_cast<std::uint64_t>(side)},
                {"per_cell", static_cast<std::uint64_t>(per_cell)},
                {"layer", "physical"},
                {"latency", p.round.finished_at - stack.setup_time},
                {"energy", stack.ledger->total() - e_before},
                {"messages",
                 static_cast<std::uint64_t>(p.round.messages_sent)},
                {"stretch", stretch},
                {"wall_ms", wall_ms}});

      // Result equivalence: all layers must label identically.
      if (p.regions.size() != v.regions.size()) {
        std::printf("RESULT MISMATCH at side %zu per_cell %zu!\n", side,
                    per_cell);
        return 1;
      }
    }
  }
  std::printf("%s\n", table.str().c_str());
  std::printf(
      "Check: predicted == virtual exactly (same cost model, same rules).\n"
      "Physical latency and energy exceed virtual by roughly the measured\n"
      "stretch factor (physical hops per virtual hop); the region results\n"
      "are identical across all three layers. This is the correspondence\n"
      "the virtual architecture promises: analyze on the clean model,\n"
      "deploy on the messy network, keep the conclusions.\n");
  return 0;
}
