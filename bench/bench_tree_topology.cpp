// E15 (Section 3.2): virtual-topology choice vs deployment shape. "A grid
// will be an appropriate choice of virtual topology for uniform node
// deployment ... For non-uniform deployments, other virtual topologies such
// as a tree could be more appropriate."
//
// Sweeps deployments from uniform to tightly clustered; reports the grid
// precondition (all cells occupied) and, where the grid fails, shows the
// tree overlay still aggregating (count of feature cells) with its cost.
#include <cstdio>
#include <memory>

#include "analysis/table.h"
#include "bench/bench_common.h"
#include "emulation/tree_overlay.h"
#include "net/deployment.h"

namespace {

using namespace wsn;

struct Stack {
  Stack(net::DeploymentKind kind, std::size_t grid_side, std::size_t nodes,
        double spread, std::uint64_t seed)
      : sim(seed) {
    const net::Rect terrain =
        net::square_terrain(static_cast<double>(grid_side));
    net::DeploymentConfig cfg;
    cfg.kind = kind;
    cfg.node_count = nodes;
    cfg.terrain = terrain;
    cfg.cells_per_side = grid_side;
    cfg.cluster_count = 4;
    cfg.cluster_spread = spread;
    auto positions = net::deploy(cfg, sim.rng());
    graph = std::make_unique<net::NetworkGraph>(std::move(positions), 2.0);
    mapper = std::make_unique<emulation::CellMapper>(*graph, terrain, grid_side);
    ledger = std::make_unique<net::EnergyLedger>(graph->node_count());
    link = std::make_unique<net::LinkLayer>(
        sim, *graph, net::RadioModel{2.0, 1.0, 1.0, 1.0}, net::CpuModel{},
        *ledger);
  }

  sim::Simulator sim;
  std::unique_ptr<net::NetworkGraph> graph;
  std::unique_ptr<emulation::CellMapper> mapper;
  std::unique_ptr<net::EnergyLedger> ledger;
  std::unique_ptr<net::LinkLayer> link;
};

}  // namespace

int main(int argc, char** argv) {
  bench::JsonWriter json(bench::json_path_from_args(argc, argv));
  bench::print_header(
      "E15 / Sec 3.2", "Virtual topology choice: grid vs tree",
      "grid emulation needs every cell occupied; a spanning tree over "
      "occupied cells serves non-uniform deployments");

  const std::size_t grid_side = 8;
  const std::size_t nodes = 256;

  struct Scenario {
    const char* name;
    net::DeploymentKind kind;
    double spread;
  };
  const Scenario scenarios[] = {
      {"uniform (one per cell+)", net::DeploymentKind::kOnePerCellPlus, 0.0},
      {"uniform random", net::DeploymentKind::kUniformRandom, 0.0},
      {"clustered (wide)", net::DeploymentKind::kClustered, 0.20},
      {"clustered (tight)", net::DeploymentKind::kClustered, 0.08},
  };

  analysis::Table table({"deployment", "occupied cells", "grid feasible",
                         "tree size", "tree height", "sum ok", "msgs",
                         "phys hops", "latency"});
  for (const Scenario& s : scenarios) {
    Stack stack(s.kind, grid_side, nodes, s.spread, 31);
    if (!stack.graph->connected()) {
      table.row({s.name, "-", "-", "-", "-", "network disconnected", "-", "-",
                 "-"});
      continue;
    }
    std::size_t occupied = 0;
    core::GridTopology grid(grid_side);
    for (const auto& cell : grid.all_coords()) {
      if (!stack.mapper->members(cell).empty()) ++occupied;
    }
    const bool grid_ok = stack.mapper->all_cells_occupied() &&
                         stack.mapper->all_cells_connected();

    const auto binding =
        emulation::run_leader_binding(*stack.link, *stack.mapper);
    const auto tree = emulation::build_tree_overlay(*stack.mapper, binding);

    // Aggregate: each occupied cell contributes 1 if its leader's cell
    // center reading is a "feature" (alternating fixture), summing to a
    // known value.
    std::vector<double> values(tree.size());
    double expected = 0;
    for (std::size_t i = 0; i < tree.size(); ++i) {
      values[i] = static_cast<double>((tree.cells[i].row +
                                       tree.cells[i].col) % 2);
      expected += values[i];
    }
    const double t0 = stack.sim.now();
    const auto result = emulation::run_tree_sum(*stack.link, tree, values);

    table.row({s.name, analysis::Table::num(occupied) + "/64",
               grid_ok ? "yes" : "NO",
               analysis::Table::num(tree.size()),
               analysis::Table::num(tree.height()),
               result.value == expected ? "yes" : "NO",
               analysis::Table::num(result.messages),
               analysis::Table::num(result.physical_hops),
               analysis::Table::num(result.finished - t0, 1)});
    json.row("tree_topology",
             {{"deployment", s.name},
              {"occupied", static_cast<std::uint64_t>(occupied)},
              {"grid_feasible", static_cast<std::uint64_t>(grid_ok ? 1 : 0)},
              {"tree_size", static_cast<std::uint64_t>(tree.size())},
              {"tree_height", static_cast<std::uint64_t>(tree.height())},
              {"sum_ok",
               static_cast<std::uint64_t>(result.value == expected ? 1 : 0)},
              {"messages", static_cast<std::uint64_t>(result.messages)},
              {"physical_hops",
               static_cast<std::uint64_t>(result.physical_hops)},
              {"latency", result.finished - t0}});
  }
  std::printf("%s\n", table.str().c_str());
  std::printf(
      "Check: uniform deployments satisfy the grid precondition and the\n"
      "tree degenerates to a near-complete traversal; clustered deployments\n"
      "leave cells empty (grid infeasible) yet the tree overlay still\n"
      "aggregates exactly, with cost tracking the number of occupied cells\n"
      "and the inter-cluster bridges - the paper's motivation for choosing\n"
      "the virtual topology to match the deployment.\n");
  return 0;
}
