// E11 (Sections 2 & 7): "minimizing energy consumption of the network as a
// whole is the dominant concern" / "system wide energy performance has to be
// optimized for extending the network lifetime."
//
// Repeatedly runs the topographic query on the virtual architecture with a
// finite per-node budget and reports rounds until first node death, for the
// quad-tree vs the centralized algorithm, and for static vs rotated leader
// placement (the paper's Section 5.2 note on periodic leader rotation).
//
// E21 (robustness): the same lifetime question on the *physical* stack with
// the message-based runtime: every node gets a finite battery, depletion
// deaths flow through the DepletionMonitor, and repeated deadline reduces
// run until a round loses coverage. Measured with proactive leader handoff
// off and on (same seed, same budgets): handoff rotates leadership off
// dying leaders before their batteries die, so both rounds-to-first-death
// and rounds-to-coverage-loss must strictly improve.
#include <cstdio>
#include <memory>

#include "analysis/metrics.h"
#include "analysis/table.h"
#include "app/centralized.h"
#include "app/field.h"
#include "app/topographic.h"
#include "bench/bench_common.h"
#include "core/primitives.h"
#include "core/virtual_network.h"
#include "emulation/failure_detector.h"
#include "sim/depletion_monitor.h"
#include "taskgraph/mapping.h"

namespace {

using namespace wsn;

/// Per-round energy of the hottest virtual node for one strategy.
struct RoundCost {
  double hottest = 0;
  double total = 0;
};

RoundCost one_round_quadtree(std::size_t side, const app::FeatureGrid& grid,
                             core::LeaderPlacement placement) {
  sim::Simulator sim(1);
  core::VirtualNetwork vnet(sim, core::GridTopology(side),
                            core::uniform_cost_model(), placement);
  app::run_topographic_query(vnet, grid);
  const auto r = analysis::energy_report(vnet.ledger());
  return {r.max, r.total};
}

RoundCost one_round_centralized(std::size_t side, const app::FeatureGrid& grid) {
  sim::Simulator sim(1);
  core::VirtualNetwork vnet(sim, core::GridTopology(side),
                            core::uniform_cost_model());
  app::run_centralized_query(vnet, grid);
  const auto r = analysis::energy_report(vnet.ledger());
  return {r.max, r.total};
}

/// Rotated variant: alternate the leader placement corner each round, which
/// spreads the interior-task load over four distinct node sets.
double rotated_lifetime(std::size_t side, const app::FeatureGrid& grid,
                        double budget) {
  // Energy per round at each placement, per node, accumulated until some
  // node exceeds the budget.
  const std::array<core::LeaderPlacement, 3> placements = {
      core::LeaderPlacement::kNorthWest, core::LeaderPlacement::kBlockCenter,
      core::LeaderPlacement::kSouthEast};
  std::vector<std::vector<double>> per_node;
  for (const auto placement : placements) {
    sim::Simulator sim(1);
    core::VirtualNetwork vnet(sim, core::GridTopology(side),
                              core::uniform_cost_model(), placement);
    app::run_topographic_query(vnet, grid);
    std::vector<double> spent(vnet.grid().node_count());
    for (std::size_t i = 0; i < spent.size(); ++i) {
      spent[i] = vnet.ledger().spent(static_cast<net::NodeId>(i));
    }
    per_node.push_back(std::move(spent));
  }
  std::vector<double> acc(per_node[0].size(), 0.0);
  double rounds = 0;
  while (true) {
    const auto& cost = per_node[static_cast<std::size_t>(rounds) %
                                placements.size()];
    for (std::size_t i = 0; i < acc.size(); ++i) {
      if (acc[i] + cost[i] > budget) return rounds;
    }
    for (std::size_t i = 0; i < acc.size(); ++i) acc[i] += cost[i];
    ++rounds;
    if (rounds > 1e7) return rounds;
  }
}

// ---- E21: physical-stack lifetime with and without proactive handoff ----

// Same deployment as the detection-latency bench (every cell populated,
// victim cells have candidates).
constexpr std::size_t kE21Side = 4;
constexpr std::size_t kE21Nodes = 60;
constexpr double kE21Range = 1.3;
constexpr std::uint64_t kE21Seed = 7;
/// Energy each *bound leader* has left once the budgets land (per-node
/// absolute budget = setup spend + headroom, so setup traffic is already
/// paid for). Only the initially-bound leaders get finite batteries —
/// leadership is the asymmetric energy burden (beats, routed reduce
/// traffic, ARQ acks all funnel through leaders), so the experiment
/// isolates exactly the load that handoff is designed to move. Both arms
/// use the identical budget assignment.
constexpr double kE21Headroom = 240.0;
/// Reserve when handoff is on: must cover the succession's own flood storm
/// (~25 units), the per-heartbeat residual-check slip, and the drain until
/// the claim commits (see chaos_soak.cpp for the derivation).
constexpr double kE21LowWater = 96.0;
/// Short rounds back-to-back: the gap between rounds is about one
/// detection bound, so an *unplanned* leader death blanks a round before
/// the election repairs it, while a planned handoff has zero leaderless
/// time and keeps coverage.
constexpr double kE21Deadline = 60.0;
constexpr std::size_t kE21MaxRounds = 12;

/// True iff the cell's member set stays radio-connected once `removed`
/// leaves — the same succession-eligibility guard the chaos generator
/// uses (ChaosSoak). A leader whose departure would empty or disconnect
/// its cell loses coverage under *any* protocol, so budgeting it cannot
/// discriminate between the two arms.
bool survivable_without(const net::NetworkGraph& graph,
                        std::span<const net::NodeId> members,
                        net::NodeId removed) {
  std::vector<net::NodeId> alive;
  for (const net::NodeId m : members) {
    if (m != removed) alive.push_back(m);
  }
  if (alive.empty()) return false;
  std::vector<net::NodeId> frontier{alive.front()};
  std::vector<bool> seen(graph.node_count(), false);
  seen[alive.front()] = true;
  std::size_t reached = 1;
  auto is_alive = [&](net::NodeId v) {
    return std::find(alive.begin(), alive.end(), v) != alive.end();
  };
  while (!frontier.empty()) {
    const net::NodeId u = frontier.back();
    frontier.pop_back();
    for (const net::NodeId v : graph.neighbors(u)) {
      if (seen[v] || !is_alive(v)) continue;
      seen[v] = true;
      ++reached;
      frontier.push_back(v);
    }
  }
  return reached == alive.size();
}

struct E21Result {
  std::size_t rounds_completed = 0;       // full-coverage rounds, in a row
  std::size_t rounds_to_first_death = 0;  // of those, before any battery died
  double first_death_at = -1.0;           // sim time; -1 = nobody died
  std::size_t depletions = 0;
  std::size_t planned_handoffs = 0;
  std::size_t claims = 0;
};

E21Result run_physical_lifetime(double handoff_low_water) {
  bench::PhysicalStack stack(kE21Side, kE21Nodes, kE21Range, kE21Seed);
  if (!stack.healthy()) {
    std::fprintf(stderr, "E21 stack unhealthy at seed %llu\n",
                 static_cast<unsigned long long>(kE21Seed));
    std::exit(1);
  }
  stack.enable_arq();
  for (const core::GridCoord& cell : stack.overlay->grid().all_coords()) {
    const net::NodeId node =
        stack.binding_result.leader_of(cell, stack.overlay->grid().side());
    if (node == net::kNoNode) continue;
    const auto members = stack.mapper->members(cell);
    if (members.size() < 2) continue;
    if (!survivable_without(*stack.graph, members, node)) continue;
    stack.ledger->set_budget(node, stack.ledger->spent(node) + kE21Headroom);
  }
  sim::DepletionMonitor monitor(stack.sim, *stack.link);
  monitor.arm();

  emulation::FailureDetectorConfig fd_cfg;
  fd_cfg.handoff_low_water = handoff_low_water;
  emulation::FailureDetector detector(*stack.overlay, fd_cfg);
  detector.start();

  const std::vector<core::GridCoord> all_cells =
      stack.overlay->grid().all_coords();
  const std::vector<double> values(all_cells.size(), 1.0);
  E21Result out;
  for (std::size_t r = 0; r < kE21MaxRounds; ++r) {
    auto partial = std::make_shared<core::PartialResult>();
    auto closed = std::make_shared<bool>(false);
    const double round_start = stack.sim.now();
    core::group_reduce_deadline(
        *stack.overlay, all_cells, {0, 0}, values, core::ReduceOp::kSum, 1.0,
        kE21Deadline, [partial, closed](const core::PartialResult& p) {
          *partial = p;
          *closed = true;
        });
    stack.sim.run_until(round_start + kE21Deadline + 5.0);
    if (!*closed || !partial->complete()) break;  // coverage lost
    ++out.rounds_completed;
    if (monitor.deaths().empty()) {
      out.rounds_to_first_death = out.rounds_completed;
    }
  }
  out.depletions = monitor.deaths().size();
  if (!monitor.deaths().empty()) {
    out.first_death_at = monitor.deaths().front().at;
  }
  out.planned_handoffs = detector.planned_handoffs();
  out.claims = detector.claims().size();
  detector.stop();
  stack.sim.run();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bench::print_header(
      "E11 / Secs 2,7", "Network lifetime under repeated querying",
      "energy balance determines lifetime; leader rotation extends it");
  bench::JsonWriter json(bench::json_path_from_args(argc, argv));

  const double budget = 10000.0;
  analysis::Table table({"side", "strategy", "hottest E/round", "total E/round",
                         "lifetime (rounds)"});
  for (std::size_t side : {8u, 16u}) {
    const app::FeatureGrid grid = app::threshold_sample(
        app::value_noise_field(side * 17), side, 0.55);

    const RoundCost qt =
        one_round_quadtree(side, grid, core::LeaderPlacement::kNorthWest);
    table.row({analysis::Table::num(side), "quad-tree (NW leaders)",
               analysis::Table::num(qt.hottest, 1),
               analysis::Table::num(qt.total, 0),
               analysis::Table::num(budget / qt.hottest, 0)});

    const RoundCost qc =
        one_round_quadtree(side, grid, core::LeaderPlacement::kBlockCenter);
    table.row({analysis::Table::num(side), "quad-tree (center leaders)",
               analysis::Table::num(qc.hottest, 1),
               analysis::Table::num(qc.total, 0),
               analysis::Table::num(budget / qc.hottest, 0)});

    const double rotated = rotated_lifetime(side, grid, budget);
    table.row({analysis::Table::num(side), "quad-tree (rotating leaders)", "-",
               "-", analysis::Table::num(rotated, 0)});

    const RoundCost central = one_round_centralized(side, grid);
    table.row({analysis::Table::num(side), "centralized sink",
               analysis::Table::num(central.hottest, 1),
               analysis::Table::num(central.total, 0),
               analysis::Table::num(budget / central.hottest, 0)});

    json.row("lifetime", {{"side", static_cast<std::uint64_t>(side)},
                          {"strategy", "quadtree_nw"},
                          {"hottest_per_round", qt.hottest},
                          {"total_per_round", qt.total},
                          {"lifetime_rounds", budget / qt.hottest}});
    json.row("lifetime", {{"side", static_cast<std::uint64_t>(side)},
                          {"strategy", "quadtree_center"},
                          {"hottest_per_round", qc.hottest},
                          {"total_per_round", qc.total},
                          {"lifetime_rounds", budget / qc.hottest}});
    json.row("lifetime", {{"side", static_cast<std::uint64_t>(side)},
                          {"strategy", "quadtree_rotating"},
                          {"lifetime_rounds", rotated}});
    json.row("lifetime", {{"side", static_cast<std::uint64_t>(side)},
                          {"strategy", "centralized"},
                          {"hottest_per_round", central.hottest},
                          {"total_per_round", central.total},
                          {"lifetime_rounds", budget / central.hottest}});
  }
  std::printf("%s\n", table.str().c_str());
  std::printf(
      "Check: the centralized sink dies earliest (every status funnels\n"
      "through it); the quad-tree spreads load but its root-area leaders\n"
      "still dominate; rotating the leader placement across rounds spreads\n"
      "the interior-task load over disjoint node sets and extends lifetime,\n"
      "exactly the rotation rationale of Section 5.2.\n\n");

  bench::print_header(
      "E21 / robustness", "Physical-stack lifetime with proactive handoff",
      "handing leadership off before the battery dies extends both time to "
      "first death and time to coverage loss");
  analysis::Table t21({"handoff", "rounds (full coverage)",
                       "rounds before 1st death", "first death t", "deaths",
                       "handoffs", "claims"});
  E21Result e21[2];
  const char* labels[2] = {"off", "on"};
  for (int h = 0; h < 2; ++h) {
    e21[h] = run_physical_lifetime(h == 0 ? 0.0 : kE21LowWater);
    t21.row({labels[h], analysis::Table::num(e21[h].rounds_completed),
             analysis::Table::num(e21[h].rounds_to_first_death),
             analysis::Table::num(e21[h].first_death_at, 1),
             analysis::Table::num(e21[h].depletions),
             analysis::Table::num(e21[h].planned_handoffs),
             analysis::Table::num(e21[h].claims)});
    json.row("lifetime_physical",
             {{"handoff", labels[h]},
              {"rounds_completed",
               static_cast<std::uint64_t>(e21[h].rounds_completed)},
              {"rounds_to_first_death",
               static_cast<std::uint64_t>(e21[h].rounds_to_first_death)},
              {"first_death_at", e21[h].first_death_at},
              {"depletions", static_cast<std::uint64_t>(e21[h].depletions)},
              {"planned_handoffs",
               static_cast<std::uint64_t>(e21[h].planned_handoffs)},
              {"claims", static_cast<std::uint64_t>(e21[h].claims)}});
  }
  std::printf("%s\n", t21.str().c_str());
  std::printf(
      "Check: same seed, same budgets (each initially-bound leader starts\n"
      "the measured phase with %.0f energy; members are unconstrained).\n"
      "With handoff off the leader batteries die in office and their cells\n"
      "go leaderless for a detection bound, losing coverage; with handoff\n"
      "on, leaders abdicate at the low-water mark to their best-supplied\n"
      "member, so rounds-to-first-death and full-coverage rounds are\n"
      "strictly higher.\n",
      kE21Headroom);
  if (e21[1].rounds_completed <= e21[0].rounds_completed) {
    std::printf("WARNING: handoff did not extend coverage (on %zu <= off %zu)\n",
                e21[1].rounds_completed, e21[0].rounds_completed);
    return 1;
  }
  return 0;
}
