// E11 (Sections 2 & 7): "minimizing energy consumption of the network as a
// whole is the dominant concern" / "system wide energy performance has to be
// optimized for extending the network lifetime."
//
// Repeatedly runs the topographic query on the virtual architecture with a
// finite per-node budget and reports rounds until first node death, for the
// quad-tree vs the centralized algorithm, and for static vs rotated leader
// placement (the paper's Section 5.2 note on periodic leader rotation).
#include <cstdio>

#include "analysis/metrics.h"
#include "analysis/table.h"
#include "app/centralized.h"
#include "app/field.h"
#include "app/topographic.h"
#include "bench/bench_common.h"
#include "core/virtual_network.h"
#include "taskgraph/mapping.h"

namespace {

using namespace wsn;

/// Per-round energy of the hottest virtual node for one strategy.
struct RoundCost {
  double hottest = 0;
  double total = 0;
};

RoundCost one_round_quadtree(std::size_t side, const app::FeatureGrid& grid,
                             core::LeaderPlacement placement) {
  sim::Simulator sim(1);
  core::VirtualNetwork vnet(sim, core::GridTopology(side),
                            core::uniform_cost_model(), placement);
  app::run_topographic_query(vnet, grid);
  const auto r = analysis::energy_report(vnet.ledger());
  return {r.max, r.total};
}

RoundCost one_round_centralized(std::size_t side, const app::FeatureGrid& grid) {
  sim::Simulator sim(1);
  core::VirtualNetwork vnet(sim, core::GridTopology(side),
                            core::uniform_cost_model());
  app::run_centralized_query(vnet, grid);
  const auto r = analysis::energy_report(vnet.ledger());
  return {r.max, r.total};
}

/// Rotated variant: alternate the leader placement corner each round, which
/// spreads the interior-task load over four distinct node sets.
double rotated_lifetime(std::size_t side, const app::FeatureGrid& grid,
                        double budget) {
  // Energy per round at each placement, per node, accumulated until some
  // node exceeds the budget.
  const std::array<core::LeaderPlacement, 3> placements = {
      core::LeaderPlacement::kNorthWest, core::LeaderPlacement::kBlockCenter,
      core::LeaderPlacement::kSouthEast};
  std::vector<std::vector<double>> per_node;
  for (const auto placement : placements) {
    sim::Simulator sim(1);
    core::VirtualNetwork vnet(sim, core::GridTopology(side),
                              core::uniform_cost_model(), placement);
    app::run_topographic_query(vnet, grid);
    std::vector<double> spent(vnet.grid().node_count());
    for (std::size_t i = 0; i < spent.size(); ++i) {
      spent[i] = vnet.ledger().spent(static_cast<net::NodeId>(i));
    }
    per_node.push_back(std::move(spent));
  }
  std::vector<double> acc(per_node[0].size(), 0.0);
  double rounds = 0;
  while (true) {
    const auto& cost = per_node[static_cast<std::size_t>(rounds) %
                                placements.size()];
    for (std::size_t i = 0; i < acc.size(); ++i) {
      if (acc[i] + cost[i] > budget) return rounds;
    }
    for (std::size_t i = 0; i < acc.size(); ++i) acc[i] += cost[i];
    ++rounds;
    if (rounds > 1e7) return rounds;
  }
}

}  // namespace

int main(int argc, char** argv) {
  bench::print_header(
      "E11 / Secs 2,7", "Network lifetime under repeated querying",
      "energy balance determines lifetime; leader rotation extends it");
  bench::JsonWriter json(bench::json_path_from_args(argc, argv));

  const double budget = 10000.0;
  analysis::Table table({"side", "strategy", "hottest E/round", "total E/round",
                         "lifetime (rounds)"});
  for (std::size_t side : {8u, 16u}) {
    const app::FeatureGrid grid = app::threshold_sample(
        app::value_noise_field(side * 17), side, 0.55);

    const RoundCost qt =
        one_round_quadtree(side, grid, core::LeaderPlacement::kNorthWest);
    table.row({analysis::Table::num(side), "quad-tree (NW leaders)",
               analysis::Table::num(qt.hottest, 1),
               analysis::Table::num(qt.total, 0),
               analysis::Table::num(budget / qt.hottest, 0)});

    const RoundCost qc =
        one_round_quadtree(side, grid, core::LeaderPlacement::kBlockCenter);
    table.row({analysis::Table::num(side), "quad-tree (center leaders)",
               analysis::Table::num(qc.hottest, 1),
               analysis::Table::num(qc.total, 0),
               analysis::Table::num(budget / qc.hottest, 0)});

    const double rotated = rotated_lifetime(side, grid, budget);
    table.row({analysis::Table::num(side), "quad-tree (rotating leaders)", "-",
               "-", analysis::Table::num(rotated, 0)});

    const RoundCost central = one_round_centralized(side, grid);
    table.row({analysis::Table::num(side), "centralized sink",
               analysis::Table::num(central.hottest, 1),
               analysis::Table::num(central.total, 0),
               analysis::Table::num(budget / central.hottest, 0)});

    json.row("lifetime", {{"side", static_cast<std::uint64_t>(side)},
                          {"strategy", "quadtree_nw"},
                          {"hottest_per_round", qt.hottest},
                          {"total_per_round", qt.total},
                          {"lifetime_rounds", budget / qt.hottest}});
    json.row("lifetime", {{"side", static_cast<std::uint64_t>(side)},
                          {"strategy", "quadtree_center"},
                          {"hottest_per_round", qc.hottest},
                          {"total_per_round", qc.total},
                          {"lifetime_rounds", budget / qc.hottest}});
    json.row("lifetime", {{"side", static_cast<std::uint64_t>(side)},
                          {"strategy", "quadtree_rotating"},
                          {"lifetime_rounds", rotated}});
    json.row("lifetime", {{"side", static_cast<std::uint64_t>(side)},
                          {"strategy", "centralized"},
                          {"hottest_per_round", central.hottest},
                          {"total_per_round", central.total},
                          {"lifetime_rounds", budget / central.hottest}});
  }
  std::printf("%s\n", table.str().c_str());
  std::printf(
      "Check: the centralized sink dies earliest (every status funnels\n"
      "through it); the quad-tree spreads load but its root-area leaders\n"
      "still dominate; rotating the leader placement across rounds spreads\n"
      "the interior-task load over disjoint node sets and extends lifetime,\n"
      "exactly the rotation rationale of Section 5.2.\n");
  return 0;
}
