// E20 (robustness; Section 5 runtime hardening): the distributed failure
// detector trades heartbeat energy for detection speed. This bench sweeps
// the (heartbeat_period, lease_duration) pair and reports, per config, the
// steady-state heartbeat energy overhead rate (ledger energy per unit time
// with no faults and no workload) and the crash-to-claim latency when a
// cell leader dies — measured twice, against different cells, to show the
// latency is a property of the lease timing, not the victim. The analytic
// worst-case bound (lease + 1.5*election stagger + slack) is printed next
// to the measurement; all measured latencies must sit below it.
#include <cstdio>

#include "analysis/table.h"
#include "bench/bench_common.h"
#include "emulation/failure_detector.h"

namespace {

using namespace wsn;

constexpr std::size_t kSide = 4;
constexpr std::size_t kNodes = 60;
constexpr double kRange = 1.3;
// Seed 7: every cell is populated and the victim cells below have >= 4
// members, so a re-election always has candidates.
constexpr std::uint64_t kSeed = 7;
constexpr double kIdleWindow = 100.0;

struct Config {
  double heartbeat;
  double lease;
};

struct RunResult {
  double overhead_rate;   // energy per unit time, faults-free steady state
  double latency[2];      // crash -> committed claim, two victim cells
  double bound;           // analytic worst case for this config
  std::uint64_t beats;    // fd.beat counter over the whole run
  std::size_t claims;
};

RunResult run(const Config& c) {
  bench::PhysicalStack stack(kSide, kNodes, kRange, kSeed);
  if (!stack.healthy()) {
    std::fprintf(stderr, "stack unhealthy at seed %llu\n",
                 static_cast<unsigned long long>(kSeed));
    std::exit(1);
  }
  stack.enable_arq();

  emulation::FailureDetectorConfig fd_cfg;
  fd_cfg.heartbeat_period = c.heartbeat;
  fd_cfg.lease_duration = c.lease;
  emulation::FailureDetector detector(*stack.overlay, fd_cfg);
  detector.start();

  RunResult out{};
  // Worst case: initial lease grant (1.5x), one electing-grace watchdog
  // deferral, staggered election close (1.5x timeout), propagation slack.
  out.bound = 1.5 * fd_cfg.lease_duration + fd_cfg.lease_duration +
              1.5 * fd_cfg.election_timeout + 10.0;

  // Phase 1: steady state. No faults, no workload — everything the ledger
  // accumulates is heartbeat/uplease traffic (and its ARQ acks).
  const double t0 = stack.sim.now();
  const double e0 = stack.ledger->total();
  stack.sim.run_until(t0 + kIdleWindow);
  out.overhead_rate = (stack.ledger->total() - e0) / kIdleWindow;

  // Phase 2: crash two cell leaders, one after the other, and time each
  // committed claim. Sequential so the second election runs on a fabric
  // already reshaped by the first — the common case in long soaks.
  const core::GridCoord victims[2] = {{1, 1}, {3, 2}};
  for (int v = 0; v < 2; ++v) {
    const net::NodeId leader = stack.overlay->bound_node(victims[v]);
    const double crash_at = stack.sim.now();
    stack.link->set_down(leader, true);
    stack.sim.run_until(crash_at + out.bound);
    if (detector.claims().size() == static_cast<std::size_t>(v + 1)) {
      out.latency[v] = detector.claims().back().at - crash_at;
    } else {
      out.latency[v] = -1.0;  // missed detection: visible in the table
    }
  }

  out.beats = detector.counters().get("fd.beat");
  out.claims = detector.claims().size();
  detector.stop();
  stack.sim.run();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bench::print_header(
      "E20 / robustness", "failure detection latency vs heartbeat overhead",
      "shorter leases detect leader crashes sooner but spend proportionally "
      "more energy on heartbeats; all latencies sit under the analytic "
      "lease + election bound");
  bench::JsonWriter json(bench::json_path_from_args(argc, argv));

  const Config configs[] = {{2.5, 8.0}, {5.0, 16.0}, {10.0, 32.0}};
  analysis::Table table({"heartbeat", "lease", "overhead_rate", "latency_1",
                         "latency_2", "bound", "claims", "beats"});
  for (const Config& c : configs) {
    const RunResult r = run(c);
    table.row({analysis::Table::num(c.heartbeat, 1),
               analysis::Table::num(c.lease, 1),
               analysis::Table::num(r.overhead_rate, 2),
               analysis::Table::num(r.latency[0], 1),
               analysis::Table::num(r.latency[1], 1),
               analysis::Table::num(r.bound, 1),
               analysis::Table::num(r.claims),
               analysis::Table::num(r.beats)});
    json.row("detection_latency",
             {{"heartbeat", c.heartbeat},
              {"lease", c.lease},
              {"overhead_rate", r.overhead_rate},
              {"latency_1", r.latency[0]},
              {"latency_2", r.latency[1]},
              {"bound", r.bound},
              {"claims", static_cast<std::uint64_t>(r.claims)},
              {"beats", r.beats}});
  }
  std::printf("%s\n", table.str().c_str());
  std::printf(
      "Check: halving the heartbeat period roughly halves detection latency\n"
      "and doubles the steady-state overhead rate; every measured latency\n"
      "is below the bound; each crash produced exactly one claim (claims\n"
      "column = 2). A latency of -1 would mean a missed detection.\n");
  return 0;
}
