// E24 (robustness; self-stabilizing re-convergence): after adversarial
// state corruption — scrambled epochs, repointed or self-crowned leader
// beliefs, shuffled route tables, poisoned leases — the failure detector's
// audit rounds must drive every cell back to a single correct leader
// within the analytic stabilization bound. This bench sweeps corruption
// severity (strikes per campaign) against deployment topology (grid from
// the paper, ring and mesh from the PraSLE diversification) and reports,
// per cell of the sweep, the worst corruption-to-quiet latency, the same
// expressed in audit rounds, the elections corruption forced, and the
// total trace events (the message-cost proxy). Every campaign runs the
// full chaos oracle including check_stabilization; `failed` must be 0 in
// every row for the other columns to mean anything.
#include <cstdio>

#include "analysis/table.h"
#include "bench/bench_common.h"
#include "sim/chaos_soak.h"

namespace {

using namespace wsn;

constexpr std::size_t kCampaigns = 2;
constexpr std::uint64_t kSeed = 20260808;

struct RunResult {
  std::size_t failed = 0;
  std::size_t corruptions = 0;
  std::size_t claims = 0;
  std::uint64_t events = 0;
  double max_reconverge = 0.0;  // worst corruption-to-quiet latency
  double rounds = 0.0;          // the same, in audit periods
  double bound = 0.0;           // analytic stabilization bound
};

RunResult run(net::TopologyKind topo, std::size_t severity) {
  sim::ChaosSoakConfig cfg;
  cfg.topology = topo;
  cfg.corruption = true;
  cfg.corruption_events = severity;
  cfg.campaigns = kCampaigns;
  cfg.seed = kSeed;
  const sim::ChaosSoak soak(cfg);

  RunResult out{};
  out.bound = 2.5 * cfg.detector.lease_duration +
              1.5 * cfg.detector.election_timeout +
              cfg.corruption_audit_period + 10.0;
  for (std::size_t k = 0; k < cfg.campaigns; ++k) {
    const sim::ChaosCampaignResult res = soak.run_campaign(k);
    if (!res.ok()) ++out.failed;
    out.corruptions += res.corruptions;
    out.claims += res.claims;
    out.events += res.events;
    out.max_reconverge =
        std::max(out.max_reconverge, res.max_reconverge_latency);
  }
  out.rounds = out.max_reconverge / cfg.corruption_audit_period;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bench::print_header(
      "E24 / robustness",
      "self-stabilizing re-convergence vs corruption severity and topology",
      "from any reachable corrupted soft state the detector re-converges to "
      "one correct leader per cell within the analytic stabilization bound, "
      "on grid, ring, and mesh deployments alike");
  bench::JsonWriter json(bench::json_path_from_args(argc, argv));

  const net::TopologyKind topologies[] = {net::TopologyKind::kGrid,
                                          net::TopologyKind::kRing,
                                          net::TopologyKind::kMesh};
  const std::size_t severities[] = {1, 4};
  analysis::Table table({"topology", "severity", "corruptions", "claims",
                         "reconverge", "rounds", "bound", "events", "failed"});
  for (const net::TopologyKind topo : topologies) {
    for (const std::size_t severity : severities) {
      const RunResult r = run(topo, severity);
      table.row({net::to_string(topo), analysis::Table::num(severity),
                 analysis::Table::num(r.corruptions),
                 analysis::Table::num(r.claims),
                 analysis::Table::num(r.max_reconverge, 2),
                 analysis::Table::num(r.rounds, 2),
                 analysis::Table::num(r.bound, 1),
                 analysis::Table::num(r.events),
                 analysis::Table::num(r.failed)});
      json.row("convergence",
               {{"topology", std::string(net::to_string(topo))},
                {"severity", static_cast<std::uint64_t>(severity)},
                {"corruptions", static_cast<std::uint64_t>(r.corruptions)},
                {"claims", static_cast<std::uint64_t>(r.claims)},
                {"reconverge", r.max_reconverge},
                {"rounds", r.rounds},
                {"bound", r.bound},
                {"events", r.events},
                {"failed", static_cast<std::uint64_t>(r.failed)}});
    }
  }
  std::printf("%s\n", table.str().c_str());
  std::printf(
      "Check: failed is 0 in every row (each campaign passed the full chaos\n"
      "oracle including check_stabilization and end-state agreement); every\n"
      "reconverge latency sits under the bound; higher severity costs more\n"
      "audit rounds and elections but never convergence itself.\n");
  return 0;
}
