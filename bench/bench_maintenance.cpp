// E13 (Section 5.1 maintenance): "since new nodes can be added to the
// network or existing nodes can leave or fail, the above protocol should
// execute periodically."
//
// Kills an increasing fraction of nodes, repairs the routing tables and the
// leader binding, and reports repair cost vs a cold re-run plus the
// post-repair health of the overlay (query correctness, failed sends).
#include <cstdio>

#include "analysis/table.h"
#include "app/field.h"
#include "app/labeling.h"
#include "app/topographic.h"
#include "bench/bench_common.h"

int main(int argc, char** argv) {
  using namespace wsn;
  bench::JsonWriter json(bench::json_path_from_args(argc, argv));
  bench::print_header(
      "E13 / Sec 5.1", "Periodic protocol re-execution under node failures",
      "repair keeps verified entries and re-learns only what failures "
      "broke; the rebound overlay still answers queries correctly");

  // A sparser deployment (range barely above the cell diagonal / density
  // threshold) so multi-hop table learning actually occurs and repair
  // savings are visible.
  const std::size_t grid_side = 4;
  const std::size_t nodes = 160;
  const double range = 1.05;

  analysis::Table table({"failed%", "repair bcast", "cold bcast",
                         "re-adoptions", "cold adoptions", "leaders re-elected",
                         "query ok", "failed sends"});
  for (const double fail_fraction : {0.0, 0.05, 0.10, 0.20, 0.30}) {
    bench::PhysicalStack stack(grid_side, nodes, range, 99);
    if (!stack.healthy()) continue;

    // Fail a random subset (deterministic per fraction).
    sim::Rng rng(static_cast<std::uint64_t>(fail_fraction * 1000) + 1);
    const auto target = static_cast<std::size_t>(
        fail_fraction * static_cast<double>(nodes));
    std::size_t killed = 0;
    while (killed < target) {
      const auto victim =
          static_cast<net::NodeId>(rng.below(stack.graph->node_count()));
      if (!stack.link->is_down(victim)) {
        stack.link->set_down(victim, true);
        ++killed;
      }
    }

    const auto repaired = emulation::run_topology_repair(
        *stack.link, *stack.mapper, stack.emulation_result.tables);
    const auto rebound = emulation::run_binding_repair(
        *stack.link, *stack.mapper, stack.binding_result);

    // Cold re-run for comparison (fresh tables, same failures).
    bench::PhysicalStack cold(grid_side, nodes, range, 99);
    for (net::NodeId i = 0; i < cold.graph->node_count(); ++i) {
      cold.link->set_down(i, stack.link->is_down(i));
    }
    const auto cold_run =
        emulation::run_topology_emulation(*cold.link, *cold.mapper);

    std::size_t reelected = 0;
    for (std::size_t i = 0; i < rebound.leaders.size(); ++i) {
      if (rebound.leaders[i] != stack.binding_result.leaders[i]) ++reelected;
    }

    // Health check: run a query over the repaired overlay.
    emulation::OverlayNetwork overlay(*stack.link, *stack.mapper, repaired,
                                      rebound);
    sim::Rng field_rng(7);
    const app::FeatureGrid field = app::random_grid(grid_side, 0.5, field_rng);
    const auto outcome = app::run_topographic_query(overlay, field);
    const bool ok =
        outcome.regions.size() == app::label_regions(field).region_count();

    table.row({analysis::Table::num(fail_fraction * 100.0, 0),
               analysis::Table::num(repaired.broadcasts),
               analysis::Table::num(cold_run.broadcasts),
               analysis::Table::num(repaired.adoptions),
               analysis::Table::num(cold_run.adoptions),
               analysis::Table::num(reelected), ok ? "yes" : "NO",
               analysis::Table::num(overlay.failed_sends())});
    json.row("maintenance",
             {{"failed_pct", fail_fraction * 100.0},
              {"repair_broadcasts",
               static_cast<std::uint64_t>(repaired.broadcasts)},
              {"cold_broadcasts",
               static_cast<std::uint64_t>(cold_run.broadcasts)},
              {"repair_adoptions",
               static_cast<std::uint64_t>(repaired.adoptions)},
              {"cold_adoptions",
               static_cast<std::uint64_t>(cold_run.adoptions)},
              {"reelected", static_cast<std::uint64_t>(reelected)},
              {"query_ok", static_cast<std::uint64_t>(ok ? 1 : 0)},
              {"failed_sends",
               static_cast<std::uint64_t>(overlay.failed_sends())}});
  }
  std::printf("%s\n", table.str().c_str());
  std::printf(
      "Check: with no failures the repair re-learns nothing (verified\n"
      "entries are kept); under failures it re-adopts a fraction of what a\n"
      "cold start learns; broadcasts shrink with the live population;\n"
      "leader re-elections track dead leaders; the repaired overlay still\n"
      "labels the field correctly with no failed sends.\n");
  return 0;
}
