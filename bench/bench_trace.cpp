// E23: trace-capture pipeline throughput. The scale story of the obs layer
// rests on three numbers per sink — events/sec, bytes/event, and
// allocations/event — for the in-memory ring buffer vs. the streaming file
// sinks (JSONL text and compact binary wtr). The generator emits synthetic
// unit-latency flows whose shape is checker-clean (announced hop count ==
// traced, latency decomposes exactly), so with --out the same stream doubles
// as the CI scale artifact: a multi-segment wtr capture plus the
// byte-identical direct JSONL export `wsn-inspect convert` must reproduce.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "analysis/table.h"
#include "bench/bench_common.h"
#include "obs/export.h"
#include "obs/profiler.h"
#include "obs/sinks.h"
#include "obs/stream_sink.h"
#include "obs/trace.h"

namespace {

using namespace wsn;

// One synthetic flow per tick k: send + its single hop at t=k, delivery at
// t=k+1, nodes cycling a 1024-node id space. With the analyzers' default
// retire lag the live-flow window over this stream is ~1k flows no matter
// how many events are generated — which is exactly what the CI RSS ceiling
// asserts.
template <typename Emit>
std::uint64_t generate_events(std::uint64_t target, Emit&& emit) {
  const std::uint64_t flows = (target + 2) / 3;
  for (std::uint64_t k = 0; k < flows; ++k) {
    const double t = static_cast<double>(k);
    const auto src = static_cast<std::int64_t>(k % 1024);
    const auto dst = static_cast<std::int64_t>((k * 7 + 3) % 1024);
    const std::uint64_t flow = k + 1;

    obs::TraceEvent send;
    send.time = t;
    send.node = src;
    send.category = obs::Category::kVirtual;
    send.name = "send";
    send.flow = flow;
    send.attrs = {{"dst", dst}, {"size", 1.0}, {"hops", std::uint64_t{1}}};
    emit(std::move(send));

    obs::TraceEvent hop;
    hop.time = t;
    hop.node = src;
    hop.category = obs::Category::kVirtual;
    hop.name = "hop";
    hop.flow = flow;
    hop.attrs = {{"hop", std::uint64_t{0}},
                 {"next", dst},
                 {"depart", t + 1.0},
                 {"wait", 0.0}};
    emit(std::move(hop));

    obs::TraceEvent deliver;
    deliver.time = t + 1.0;
    deliver.node = dst;
    deliver.category = obs::Category::kVirtual;
    deliver.name = "deliver";
    deliver.flow = flow;
    emit(std::move(deliver));
  }
  return flows * 3;
}

struct CaseResult {
  std::uint64_t events = 0;
  double bytes_per_event = 0.0;
  std::uint64_t alloc_per_event = 0;
  double events_per_sec = 0.0;
  double wall_ms = 0.0;
};

template <typename Run>
CaseResult timed_case(Run&& run) {
  // `run` feeds the generator into one sink and returns events emitted;
  // alloc/event is the global operator-new delta over the whole capture
  // loop (event construction included), so a sink that allocates per event
  // is impossible to hide.
  const obs::AllocStats alloc0 = obs::global_alloc_stats();
  const auto t0 = std::chrono::steady_clock::now();
  const std::uint64_t events = run();
  const auto t1 = std::chrono::steady_clock::now();
  const obs::AllocStats alloc1 = obs::global_alloc_stats();

  CaseResult r;
  r.events = events;
  r.wall_ms =
      std::chrono::duration<double, std::milli>(t1 - t0).count();
  r.events_per_sec =
      r.wall_ms > 0.0 ? static_cast<double>(events) / (r.wall_ms / 1e3) : 0.0;
  r.alloc_per_event = events > 0 ? (alloc1.count - alloc0.count) / events : 0;
  return r;
}

std::string flag_value(int argc, char** argv, const char* name) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return argv[i + 1];
  }
  return "";
}

}  // namespace

int main(int argc, char** argv) {
  namespace fs = std::filesystem;
  bench::JsonWriter json(bench::json_path_from_args(argc, argv));
  bench::print_header(
      "E23", "Trace-capture pipeline throughput",
      "streaming file capture (wtr binary / JSONL) keeps event cost flat — "
      "bytes/event and alloc/event are constants, not functions of run "
      "length");

  std::uint64_t target = 200000;
  const std::string events_flag = flag_value(argc, argv, "--events");
  if (!events_flag.empty()) target = std::stoull(events_flag);
  const std::string out_dir = flag_value(argc, argv, "--out");

  const fs::path scratch = "bench_trace.scratch";
  fs::remove_all(scratch);

  analysis::Table table(
      {"sink", "events", "bytes/event", "alloc/event", "Mev/s", "wall ms"});
  struct Row {
    const char* name;
    CaseResult result;
  };
  std::vector<Row> rows;

  {
    obs::RingBufferSink ring(1 << 16);
    rows.push_back({"ring", timed_case([&] {
                      return generate_events(target, [&](obs::TraceEvent ev) {
                        ring.accept(std::move(ev));
                      });
                    })});
  }
  for (const auto& [name, format] :
       {std::pair<const char*, obs::TraceFormat>{"jsonl_file",
                                                 obs::TraceFormat::kJsonl},
        {"wtr_file", obs::TraceFormat::kWtr}}) {
    obs::StreamSinkConfig cfg;
    cfg.directory = (scratch / name).string();
    cfg.format = format;
    obs::StreamingFileSink sink(cfg);
    CaseResult r = timed_case([&] {
      const std::uint64_t n = generate_events(
          target, [&](obs::TraceEvent ev) { sink.accept(std::move(ev)); });
      sink.close();
      return n;
    });
    if (!sink.ok()) {
      std::printf("SINK FAILED (%s): %s\n", name, sink.error().c_str());
      return 1;
    }
    r.bytes_per_event = r.events > 0 ? static_cast<double>(sink.bytes_written())
                                           / static_cast<double>(r.events)
                                     : 0.0;
    rows.push_back({name, r});
  }

  for (const Row& row : rows) {
    const CaseResult& r = row.result;
    table.row({row.name, analysis::Table::num(r.events),
               analysis::Table::num(r.bytes_per_event, 1),
               analysis::Table::num(r.alloc_per_event),
               analysis::Table::num(r.events_per_sec / 1e6, 2),
               analysis::Table::num(r.wall_ms, 1)});
    json.row("trace", {{"sink", std::string(row.name)},
                       {"events", r.events},
                       {"bytes_per_event", r.bytes_per_event},
                       {"alloc_per_event", r.alloc_per_event},
                       {"events_per_sec", r.events_per_sec},
                       {"wall_ms", r.wall_ms}});
  }
  std::printf("%s\n", table.str().c_str());
  fs::remove_all(scratch);

  if (!out_dir.empty()) {
    // CI scale artifact: the wtr capture (8 MiB segments so a million-event
    // run exercises rotation) plus the direct JSONL export of the same
    // stream. `wsn-inspect convert <dir> --format jsonl` must reproduce the
    // .jsonl file byte-for-byte.
    fs::remove_all(out_dir);
    obs::StreamSinkConfig cfg;
    cfg.directory = out_dir;
    cfg.format = obs::TraceFormat::kWtr;
    cfg.segment_bytes = 8ull << 20;
    obs::StreamingFileSink sink(cfg);
    std::ofstream jsonl(out_dir + ".jsonl",
                        std::ios::binary | std::ios::trunc);
    std::string line;
    const std::uint64_t n =
        generate_events(target, [&](obs::TraceEvent ev) {
          line.clear();
          obs::append_jsonl(ev, line);
          line += '\n';
          jsonl.write(line.data(), static_cast<std::streamsize>(line.size()));
          sink.accept(std::move(ev));
        });
    if (!sink.close() || !jsonl) {
      std::printf("CAPTURE FAILED: %s\n", sink.error().c_str());
      return 1;
    }
    std::printf("capture: %llu events -> %s (wtr, %llu segments) + %s.jsonl\n\n",
                static_cast<unsigned long long>(n), out_dir.c_str(),
                static_cast<unsigned long long>(sink.segments()),
                out_dir.c_str());
  }

  std::printf(
      "Check: the binary wtr encoding spends a fraction of the JSONL bytes\n"
      "per event (string interning + varints vs. decimal text) and neither\n"
      "file sink allocates beyond the event construction itself - capture\n"
      "cost per event is flat, so trace length is bounded by disk, not\n"
      "memory.\n");
  return 0;
}
