// E6 (Section 4.2): "the latency and energy of transmitting a data packet
// from a level k follower to the level k leader is proportional to the
// minimum number of hops separating them in the virtual network graph,
// assuming shortest path routing."
//
// Measures follower-to-leader cost per hierarchy level on the virtual layer
// and compares with the closed form (max 2(2^k - 1), mean 2^k - 1).
#include <cstdio>

#include "analysis/analytical.h"
#include "analysis/table.h"
#include "bench/bench_common.h"
#include "core/primitives.h"
#include "core/virtual_network.h"
#include "sim/trace.h"

int main(int argc, char** argv) {
  using namespace wsn;
  bench::JsonWriter json(bench::json_path_from_args(argc, argv));
  bench::print_header(
      "E6 / Sec 4.2", "Group communication cost vs hierarchy level",
      "member-to-leader cost proportional to minimum hop count; advertised "
      "by the middleware for performance analysis");

  const std::size_t side = 64;
  core::GridTopology grid(side);
  core::GroupHierarchy groups(grid);

  analysis::Table table({"level", "block", "members", "mean hops", "max hops",
                         "pred mean", "pred max", "energy/msg(max)"});
  for (std::uint32_t level = 1; level <= groups.max_level(); ++level) {
    sim::Summary hops;
    for (const core::GridCoord& c : grid.all_coords()) {
      hops.add(static_cast<double>(groups.hops_to_leader(c, level)));
    }
    const auto pred = analysis::predict_group_comm(level);
    const core::CostModel cost = core::uniform_cost_model();
    table.row({analysis::Table::num(level),
               analysis::Table::num(groups.block_side(level)) + "x" +
                   analysis::Table::num(groups.block_side(level)),
               analysis::Table::num(static_cast<std::uint64_t>(1)
                                    << (2 * level)),
               analysis::Table::num(hops.mean(), 2),
               analysis::Table::num(hops.max(), 0),
               analysis::Table::num(pred.mean_hops, 2),
               analysis::Table::num(pred.max_hops),
               analysis::Table::num(
                   cost.path_energy(pred.max_hops, 1.0), 0)});
    json.row("group_comm",
             {{"level", static_cast<std::uint64_t>(level)},
              {"mean_hops", hops.mean()},
              {"max_hops", hops.max()},
              {"pred_mean_hops", pred.mean_hops},
              {"pred_max_hops", static_cast<std::uint64_t>(pred.max_hops)},
              {"energy_per_msg_max", cost.path_energy(pred.max_hops, 1.0)}});
  }
  std::printf("%s\n", table.str().c_str());

  // Executable check: a level-3 reduction over one block measures latency =
  // max hop distance + 1 merge under unit costs.
  sim::Simulator sim(1);
  core::VirtualNetwork vnet(sim, grid, core::uniform_cost_model());
  const auto members = groups.members({0, 0}, 3);
  std::vector<double> values(members.size(), 1.0);
  double latency = 0;
  core::group_reduce(vnet, members, groups.leader_of({0, 0}, 3), values,
                     core::ReduceOp::kSum, 1.0,
                     [&](const core::CollectiveResult& r) {
                       latency = r.finished;
                     });
  sim.run();
  std::printf(
      "Executable check (level-3 sum over an 8x8 block): finished at t=%.1f,\n"
      "predicted max follower distance %.0f + 1 merge = %.1f.\n",
      latency, static_cast<double>(analysis::predict_group_comm(3).max_hops),
      static_cast<double>(analysis::predict_group_comm(3).max_hops) + 1.0);
  std::printf(
      "\nCheck: measured means/maxima equal the closed forms 2^k - 1 and\n"
      "2(2^k - 1) at every level - the middleware's advertised cost is the\n"
      "exact shortest-path hop count.\n");
  json.row("group_comm_reduce",
           {{"level", static_cast<std::uint64_t>(3)}, {"latency", latency}});
  return 0;
}
