// E18 (design-flow ablation): the paper's task graph is a quad-tree, but
// the flow speaks of general k-ary trees ("in a task graph structured as a
// k-ary tree, the interaction between every parent node and its k children
// can be implemented using a middleware API for group communication").
// Sweeps the divide-and-conquer fan-out analytically: 4-ary (the paper),
// 16-ary, 64-ary, up to fully centralized-in-one-level, showing the
// latency/energy/merge-load trade the designer faces before mapping.
#include <cstdio>

#include "analysis/analytical.h"
#include "analysis/table.h"
#include "bench/bench_common.h"

int main(int argc, char** argv) {
  using namespace wsn;
  bench::print_header(
      "E18 / design-flow ablation", "Divide-and-conquer fan-out sweep",
      "fan-out trades tree depth (merge latency) against per-leader load; "
      "the communication term of the critical path is fan-out-invariant");
  bench::JsonWriter json(bench::json_path_from_args(argc, argv));

  const core::CostModel cost = core::uniform_cost_model();
  for (std::size_t side : {16u, 64u}) {
    std::uint32_t p = 0;
    for (std::size_t s = side; s > 1; s >>= 1) ++p;
    std::printf("grid %zux%zu (N = %zu):\n", side, side, side * side);
    analysis::Table table({"fan-out", "levels", "messages", "total hops",
                           "energy", "latency", "merges/leader"});
    for (std::uint32_t j = 1; j <= p; ++j) {
      if (p % j != 0) continue;
      const auto pred = analysis::predict_fanout(side, j, cost);
      const std::uint64_t fanout = 1ULL << (2 * j);
      table.row({analysis::Table::num(fanout), analysis::Table::num(p / j),
                 analysis::Table::num(pred.messages),
                 analysis::Table::num(pred.total_hops),
                 analysis::Table::num(pred.total_energy, 0),
                 analysis::Table::num(pred.latency, 1),
                 analysis::Table::num(fanout)});
      json.row("fanout_ablation",
               {{"side", static_cast<std::uint64_t>(side)},
                {"fanout", fanout},
                {"levels", static_cast<std::uint64_t>(p / j)},
                {"messages", static_cast<std::uint64_t>(pred.messages)},
                {"total_hops", static_cast<std::uint64_t>(pred.total_hops)},
                {"energy", pred.total_energy},
                {"latency", pred.latency}});
    }
    std::printf("%s\n", table.str().c_str());
  }

  // Cross-check: j = 1 must equal the quad-tree prediction (verified in
  // tests too); print the deltas for the record.
  const auto quad = analysis::predict_quadtree(64, cost);
  const auto f4 = analysis::predict_fanout(64, 1, cost);
  std::printf("cross-check (side 64, fan-out 4): latency %.1f vs %.1f, "
              "energy %.0f vs %.0f, hops %llu vs %llu\n\n",
              quad.latency, f4.latency, quad.total_energy, f4.total_energy,
              static_cast<unsigned long long>(quad.total_hops),
              static_cast<unsigned long long>(f4.total_hops));

  std::printf(
      "Check: the communication leg of the critical path is 2(m-1) hops at\n"
      "EVERY fan-out (the diagonal transfers telescope), so latency differs\n"
      "only by the per-level merge term - fewer levels win slightly. The\n"
      "price of large fan-out is per-leader merge load (messages converging\n"
      "on one node) and worse energy balance, which is why the paper's\n"
      "quad-tree sits at the small-fan-out end of the design space.\n");
  return 0;
}
