// E10 (Section 4.2 ablation): "the non-leaf nodes can be mapped anywhere in
// the grid subject to performance optimization" and leader placement is a
// free design choice.
//
// Compares NW-corner (the paper), block-center, south-east, random-interior,
// and hill-climbing-improved mappings on total energy, critical latency, and
// energy balance.
#include <cstdio>

#include "analysis/table.h"
#include "bench/bench_common.h"
#include "taskgraph/mapping.h"

int main(int argc, char** argv) {
  using namespace wsn;
  bench::JsonWriter json(bench::json_path_from_args(argc, argv));
  bench::print_header(
      "E10 / Sec 4.2", "Mapping / leader-placement ablation",
      "interior-task placement trades latency against balance; the virtual "
      "architecture's evaluator ranks alternatives before deployment");

  const std::size_t side = 16;
  const taskgraph::QuadTree tree = taskgraph::build_quad_tree(side);
  core::GridTopology grid(side);
  const core::CostModel cost = core::uniform_cost_model();

  analysis::Table table({"mapping", "total energy", "critical latency",
                         "max node E", "energy stddev", "constraints"});
  auto add_row = [&](const std::string& name,
                     const taskgraph::RoleAssignment& mapping) {
    const auto c = taskgraph::evaluate_mapping(tree.graph, mapping, grid, cost);
    const bool ok = taskgraph::satisfies_constraints(tree.graph, mapping, grid);
    table.row({name, analysis::Table::num(c.total_energy, 0),
               analysis::Table::num(c.critical_latency, 1),
               analysis::Table::num(c.max_node_energy, 1),
               analysis::Table::num(c.energy_stddev, 2), ok ? "ok" : "VIOLATED"});
    json.row("mapping_ablation",
             {{"mapping", name.c_str()},
              {"total_energy", c.total_energy},
              {"critical_latency", c.critical_latency},
              {"max_node_energy", c.max_node_energy},
              {"energy_stddev", c.energy_stddev},
              {"constraints_ok", static_cast<std::uint64_t>(ok ? 1 : 0)}});
  };

  core::GroupHierarchy nw(grid, core::LeaderPlacement::kNorthWest);
  core::GroupHierarchy center(grid, core::LeaderPlacement::kBlockCenter);
  core::GroupHierarchy se(grid, core::LeaderPlacement::kSouthEast);
  add_row("NW corner (paper)", taskgraph::paper_mapping(tree, nw));
  add_row("block center", taskgraph::paper_mapping(tree, center));
  add_row("SE corner", taskgraph::paper_mapping(tree, se));

  sim::Rng rng(99);
  add_row("random interior", taskgraph::random_interior_mapping(tree, rng));

  sim::Rng rng2(7);
  const auto improved = taskgraph::improve_mapping(
      tree.graph, taskgraph::paper_mapping(tree, nw), grid, cost,
      taskgraph::MappingObjective::kCriticalLatency, 400, rng2);
  add_row("NW + hill-climb (latency)", improved);

  sim::Rng rng3(8);
  const auto balanced = taskgraph::improve_mapping(
      tree.graph, taskgraph::paper_mapping(tree, nw), grid, cost,
      taskgraph::MappingObjective::kEnergyBalance, 400, rng3);
  add_row("NW + hill-climb (balance)", balanced);

  // A constraint-violating mapping for contrast.
  sim::Rng rng4(9);
  add_row("scrambled leaves (violates)",
          taskgraph::scrambled_leaf_mapping(tree, rng4));

  std::printf("%s\n", table.str().c_str());
  std::printf(
      "Check: center placement halves the per-level diagonal transfer and\n"
      "wins on critical latency at equal total hops; hill climbing\n"
      "improves its chosen objective without breaking constraints; the\n"
      "scrambled-leaf mapping is flagged as violating spatial correlation\n"
      "(merging non-adjacent extents would defeat boundary compression).\n");
  return 0;
}
