// Kernel events/sec microbench — the perf gate for the EventQueue.
//
// The ROADMAP's kernel-overhaul item (calendar queue, then PDES) needs a
// number to beat. This bench produces it: raw dispatch throughput of the
// std::priority_queue kernel under three workloads —
//
//   * churn:      steady-state at a fixed queue depth; every dispatched
//                 event schedules one successor, so the heap stays at depth
//                 D while the sift cost is exercised at several D.
//   * cancel:     schedule/cancel mix; half the scheduled events are
//                 cancelled before firing, exercising the tombstone set and
//                 the lazy-skip path in pop().
//   * quickstart: the full simulation stack (PhysicalStack + overlay
//                 traffic), so the synthetic rows stay anchored to what a
//                 real workload sees per event.
//
// Deterministic fields (depth, ops, events, cancelled, skips, final queue
// state) are gated tightly by BENCH_BASELINE.json in the observability CI
// job. Host-time fields end in "_ns" / "_per_sec" and are gated only by
// the perf-smoke job, one-sided at a generous tolerance (see
// obs/analyze/bench_compare.h).
#include <chrono>
#include <cstdio>
#include <vector>

#include "analysis/table.h"
#include "bench/bench_common.h"
#include "core/primitives.h"
#include "obs/histogram.h"
#include "obs/profiler.h"
#include "sim/simulator.h"

namespace {

using namespace wsn;
using Clock = std::chrono::steady_clock;

double ns_between(Clock::time_point a, Clock::time_point b) {
  return static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(b - a).count());
}

struct RunStats {
  std::uint64_t events = 0;
  double host_ns = 0.0;
  obs::Histogram per_event{0.0, 20000.0, 64};  // ns per dispatched event

  double events_per_sec() const {
    return host_ns > 0 ? static_cast<double>(events) * 1e9 / host_ns : 0.0;
  }
  double mean_ns() const {
    return events > 0 ? host_ns / static_cast<double>(events) : 0.0;
  }
};

/// Times `ops` single-event steps, one clock pair per event so the
/// percentile fields reflect the per-dispatch distribution, not a batch
/// average.
RunStats timed_steps(sim::Simulator& sim, std::uint64_t ops) {
  RunStats stats;
  for (std::uint64_t i = 0; i < ops; ++i) {
    const auto t0 = Clock::now();
    if (!sim.step()) break;
    const auto t1 = Clock::now();
    const double ns = ns_between(t0, t1);
    stats.host_ns += ns;
    stats.per_event.add(ns);
    ++stats.events;
  }
  return stats;
}

/// Steady-state churn at depth D: the queue is pre-filled with D events
/// spread over future time; each dispatched event re-schedules itself a
/// pseudo-random delay ahead, keeping the depth constant.
void churn_row(analysis::Table& table, bench::JsonWriter& json,
               std::size_t depth, std::uint64_t ops) {
  sim::Simulator sim(7);
  struct Reschedule {
    sim::Simulator& sim;
    void operator()() const {
      // Delay pattern decorrelated from the heap layout; derived from the
      // sim RNG so the event sequence is seed-deterministic.
      sim.schedule_in(0.5 + sim.rng().uniform(), Reschedule{sim});
    }
  };
  for (std::size_t i = 0; i < depth; ++i) {
    sim.schedule_in(sim.rng().uniform(), Reschedule{sim});
  }
  const RunStats stats = timed_steps(sim, ops);
  table.row({"churn", analysis::Table::num(depth),
             analysis::Table::num(stats.events),
             analysis::Table::num(sim.pending()),
             analysis::Table::num(stats.events_per_sec(), 0),
             analysis::Table::num(stats.mean_ns(), 0),
             analysis::Table::num(stats.per_event.p99(), 0)});
  json.row("kernel",
           {{"workload", std::string("churn")},
            {"depth", static_cast<std::uint64_t>(depth)},
            {"events", stats.events},
            {"final_depth", static_cast<std::uint64_t>(sim.pending())},
            {"peak_depth",
             static_cast<std::uint64_t>(sim.queue().peak_size())},
            {"events_per_sec", stats.events_per_sec()},
            {"mean_event_ns", stats.mean_ns()},
            {"p50_ns", stats.per_event.p50()},
            {"p90_ns", stats.per_event.p90()},
            {"p99_ns", stats.per_event.p99()}});
}

/// Schedule/cancel mix at a fixed base depth: per dispatched event, two new
/// events are scheduled and one of them immediately cancelled, so half the
/// schedule volume dies as tombstones and pop() exercises its lazy skips.
void cancel_row(analysis::Table& table, bench::JsonWriter& json,
                std::size_t depth, std::uint64_t ops) {
  sim::Simulator sim(11);
  struct Mix {
    sim::Simulator& sim;
    void operator()() const {
      sim.schedule_in(0.5 + sim.rng().uniform(), Mix{sim});
      const sim::EventId doomed =
          sim.schedule_in(1.0 + sim.rng().uniform(), [] {});
      sim.cancel(doomed);
    }
  };
  for (std::size_t i = 0; i < depth; ++i) {
    sim.schedule_in(sim.rng().uniform(), Mix{sim});
  }
  const RunStats stats = timed_steps(sim, ops);
  table.row({"cancel", analysis::Table::num(depth),
             analysis::Table::num(stats.events),
             analysis::Table::num(sim.queue().cancelled_skips()),
             analysis::Table::num(stats.events_per_sec(), 0),
             analysis::Table::num(stats.mean_ns(), 0),
             analysis::Table::num(stats.per_event.p99(), 0)});
  json.row("kernel",
           {{"workload", std::string("cancel")},
            {"depth", static_cast<std::uint64_t>(depth)},
            {"events", stats.events},
            {"final_depth", static_cast<std::uint64_t>(sim.pending())},
            {"skips", sim.queue().cancelled_skips()},
            {"tombstones",
             static_cast<std::uint64_t>(sim.queue().tombstones())},
            {"events_per_sec", stats.events_per_sec()},
            {"mean_event_ns", stats.mean_ns()},
            {"p50_ns", stats.per_event.p50()},
            {"p90_ns", stats.per_event.p90()},
            {"p99_ns", stats.per_event.p99()}});
}

/// The anchor row: a real workload (overlay all-cells-to-collector rounds
/// on a converged PhysicalStack), profiled with the SimProfiler itself so
/// the row dogfoods the instrumentation it gates.
void quickstart_row(analysis::Table& table, bench::JsonWriter& json) {
  constexpr std::size_t kSide = 8;
  constexpr std::size_t kNodes = 200;
  constexpr double kRange = 1.3;
  constexpr int kRounds = 3;
  bench::PhysicalStack stack(kSide, kNodes, kRange, 1);
  const std::uint64_t setup_events = stack.sim.events_processed();

  obs::SimProfiler& prof = obs::profiler();
  prof.arm();
  for (int round = 0; round < kRounds; ++round) {
    for (const core::GridCoord& c : core::GridTopology(kSide).all_coords()) {
      if (c.row == 0 && c.col == 0) continue;
      stack.overlay->send(c, {0, 0}, int{1}, 1.0);
    }
    stack.sim.run();
  }
  prof.disarm();
  const std::uint64_t events = stack.sim.events_processed() - setup_events;
  prof.note_sim(stack.sim.now(), events);

  const double host_ns = static_cast<double>(prof.elapsed_ns());
  const obs::ProfBucket& dispatch = prof.bucket(obs::ProfCat::kDispatch);
  table.row({"quickstart", "-", analysis::Table::num(events), "-",
             analysis::Table::num(prof.events_per_sec(), 0),
             analysis::Table::num(
                 events > 0 ? host_ns / static_cast<double>(events) : 0.0, 0),
             "-"});
  json.row("kernel",
           {{"workload", std::string("quickstart")},
            {"events", events},
            {"dispatch_count", dispatch.count},
            {"events_per_sec", prof.events_per_sec()},
            {"mean_event_ns",
             events > 0 ? host_ns / static_cast<double>(events) : 0.0},
            {"dispatch_self_ns", static_cast<double>(dispatch.self_ns)}});
}

}  // namespace

int main(int argc, char** argv) {
  bench::JsonWriter json(bench::json_path_from_args(argc, argv));
  bench::print_header(
      "kernel", "EventQueue dispatch throughput",
      "events/sec of the priority-queue kernel under churn, cancellation, "
      "and a full-stack workload; the baseline the kernel overhaul must "
      "beat");

  analysis::Table table({"workload", "depth", "events", "aux", "events/sec",
                         "mean ns", "p99 ns"});
  constexpr std::uint64_t kOps = 200'000;
  for (std::size_t depth : {256u, 4096u, 65536u}) {
    churn_row(table, json, depth, kOps);
  }
  cancel_row(table, json, 4096, kOps);
  quickstart_row(table, json);
  std::printf("%s\n", table.str().c_str());
  return 0;
}
