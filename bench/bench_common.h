// Shared helpers for the experiment benches: canonical physical-network
// stack construction, formatting, and the machine-readable --json emitter.
#pragma once

#include <cstdio>
#include <initializer_list>
#include <memory>
#include <string>
#include <utility>

#include "emulation/cell_mapper.h"
#include "emulation/emulation_protocol.h"
#include "emulation/leader_binding.h"
#include "emulation/overlay_network.h"
#include "net/deployment.h"
#include "net/link_layer.h"
#include "net/reliable_link.h"
#include "obs/json.h"
#include "obs/metrics_registry.h"
#include "obs/scoped_timer.h"
#include "sim/simulator.h"

namespace wsn::bench {

/// A fully initialized physical deployment emulating a `grid_side` virtual
/// grid: one-per-cell-plus-uniform deployment, unit-disk radio, emulation
/// protocol and leader binding already converged.
struct PhysicalStack {
  PhysicalStack(std::size_t grid_side, std::size_t nodes, double range,
                std::uint64_t seed, double jitter = 0.0)
      : sim(seed) {
    const net::Rect terrain =
        net::square_terrain(static_cast<double>(grid_side));
    net::DeploymentConfig cfg;
    cfg.kind = net::DeploymentKind::kOnePerCellPlus;
    cfg.node_count = nodes;
    cfg.terrain = terrain;
    cfg.cells_per_side = grid_side;
    auto positions = net::deploy(cfg, sim.rng());
    graph = std::make_unique<net::NetworkGraph>(std::move(positions), range);
    mapper =
        std::make_unique<emulation::CellMapper>(*graph, terrain, grid_side);
    ledger = std::make_unique<net::EnergyLedger>(graph->node_count());
    link = std::make_unique<net::LinkLayer>(
        sim, *graph, net::RadioModel{range, 1.0, 1.0, 1.0}, net::CpuModel{},
        *ledger);
    emulation_result = emulation::run_topology_emulation(*link, *mapper, jitter);
    binding_result = emulation::run_leader_binding(*link, *mapper);
    setup_energy = ledger->total();
    setup_time = sim.now();
    overlay = std::make_unique<emulation::OverlayNetwork>(
        *link, *mapper, emulation_result, binding_result);
  }

  bool healthy() const {
    return mapper->all_cells_occupied() && mapper->all_cells_connected() &&
           binding_result.unique_leaders;
  }

  /// Routes every overlay hop through a ReliableChannel (ARQ) from now on.
  /// Call after construction, before running workloads; the channel takes
  /// over the raw link receivers.
  void enable_arq(net::ReliableConfig cfg = {}) {
    arq = std::make_unique<net::ReliableChannel>(*link, cfg);
    overlay->attach_arq(*arq);
  }

  /// Registers every instrument of the stack (overlay gauges, link
  /// counters, physical energy ledger, protocol audit counts, ARQ counters
  /// when enabled) in one call.
  void register_metrics(obs::MetricsRegistry& registry) const {
    // Default-prefix link registration: the analyzer's energy invariant
    // (check_energy) looks the ledger up under "link.energy" exactly.
    link->register_metrics(registry);
    overlay->register_metrics(registry);
    emulation::register_metrics(registry, emulation_result);
    emulation::register_metrics(registry, binding_result);
    if (arq) arq->register_metrics(registry);
  }

  sim::Simulator sim;
  std::unique_ptr<net::NetworkGraph> graph;
  std::unique_ptr<emulation::CellMapper> mapper;
  std::unique_ptr<net::EnergyLedger> ledger;
  std::unique_ptr<net::LinkLayer> link;
  emulation::EmulationResult emulation_result;
  emulation::BindingResult binding_result;
  std::unique_ptr<emulation::OverlayNetwork> overlay;
  std::unique_ptr<net::ReliableChannel> arq;  // set by enable_arq()
  double setup_energy = 0.0;
  double setup_time = 0.0;
};

inline void print_header(const std::string& id, const std::string& title,
                         const std::string& claim) {
  std::printf("=== %s: %s ===\n", id.c_str(), title.c_str());
  std::printf("Paper artifact/claim: %s\n\n", claim.c_str());
}

/// Value of `--json <path>` in argv, or "" when absent. Every bench accepts
/// this flag; with it, the bench appends one JSON object per result row to
/// `<path>` alongside its human-readable table.
inline std::string json_path_from_args(int argc, char** argv) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string(argv[i]) == "--json") return argv[i + 1];
  }
  return "";
}

/// Machine-readable result emitter: one JSON object per row, JSONL framing.
///
/// Contract (the BENCH_*.json perf-trajectory consumer relies on it):
///   {"bench":"<bench id>", "<field>":<number|string>, ...}
/// Field names are bench-specific; numeric fields round-trip as written.
/// A default-constructed or empty-path writer is disabled and row() is a
/// no-op, so benches call it unconditionally.
class JsonWriter {
 public:
  JsonWriter() = default;
  explicit JsonWriter(const std::string& path) {
    if (!path.empty()) out_ = std::fopen(path.c_str(), "w");
  }
  ~JsonWriter() {
    if (out_ != nullptr) std::fclose(out_);
  }
  JsonWriter(const JsonWriter&) = delete;
  JsonWriter& operator=(const JsonWriter&) = delete;

  bool enabled() const { return out_ != nullptr; }

  void row(const std::string& bench,
           std::initializer_list<std::pair<const char*, obs::AttrValue>>
               fields) {
    if (out_ == nullptr) return;
    std::string line = "{\"bench\":";
    obs::json_append_string(line, bench);
    for (const auto& [key, value] : fields) {
      line += ',';
      obs::json_append_string(line, key);
      line += ':';
      obs::json_append_value(line, value);
    }
    line += "}\n";
    std::fwrite(line.data(), 1, line.size(), out_);
  }

 private:
  std::FILE* out_ = nullptr;
};

}  // namespace wsn::bench
