// Shared helpers for the experiment benches: canonical physical-network
// stack construction and formatting.
#pragma once

#include <cstdio>
#include <memory>
#include <string>

#include "emulation/cell_mapper.h"
#include "emulation/emulation_protocol.h"
#include "emulation/leader_binding.h"
#include "emulation/overlay_network.h"
#include "net/deployment.h"
#include "net/link_layer.h"
#include "sim/simulator.h"

namespace wsn::bench {

/// A fully initialized physical deployment emulating a `grid_side` virtual
/// grid: one-per-cell-plus-uniform deployment, unit-disk radio, emulation
/// protocol and leader binding already converged.
struct PhysicalStack {
  PhysicalStack(std::size_t grid_side, std::size_t nodes, double range,
                std::uint64_t seed, double jitter = 0.0)
      : sim(seed) {
    const net::Rect terrain =
        net::square_terrain(static_cast<double>(grid_side));
    net::DeploymentConfig cfg;
    cfg.kind = net::DeploymentKind::kOnePerCellPlus;
    cfg.node_count = nodes;
    cfg.terrain = terrain;
    cfg.cells_per_side = grid_side;
    auto positions = net::deploy(cfg, sim.rng());
    graph = std::make_unique<net::NetworkGraph>(std::move(positions), range);
    mapper =
        std::make_unique<emulation::CellMapper>(*graph, terrain, grid_side);
    ledger = std::make_unique<net::EnergyLedger>(graph->node_count());
    link = std::make_unique<net::LinkLayer>(
        sim, *graph, net::RadioModel{range, 1.0, 1.0, 1.0}, net::CpuModel{},
        *ledger);
    emulation_result = emulation::run_topology_emulation(*link, *mapper, jitter);
    binding_result = emulation::run_leader_binding(*link, *mapper);
    setup_energy = ledger->total();
    setup_time = sim.now();
    overlay = std::make_unique<emulation::OverlayNetwork>(
        *link, *mapper, emulation_result, binding_result);
  }

  bool healthy() const {
    return mapper->all_cells_occupied() && mapper->all_cells_connected() &&
           binding_result.unique_leaders;
  }

  sim::Simulator sim;
  std::unique_ptr<net::NetworkGraph> graph;
  std::unique_ptr<emulation::CellMapper> mapper;
  std::unique_ptr<net::EnergyLedger> ledger;
  std::unique_ptr<net::LinkLayer> link;
  emulation::EmulationResult emulation_result;
  emulation::BindingResult binding_result;
  std::unique_ptr<emulation::OverlayNetwork> overlay;
  double setup_energy = 0.0;
  double setup_time = 0.0;
};

inline void print_header(const std::string& id, const std::string& title,
                         const std::string& claim) {
  std::printf("=== %s: %s ===\n", id.c_str(), title.c_str());
  std::printf("Paper artifact/claim: %s\n\n", claim.c_str());
}

}  // namespace wsn::bench
