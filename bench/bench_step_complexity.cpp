// E4 (Section 4.1 claim): "an algorithm ... that runs in O(sqrt(N)) steps
// for a sqrt(N) x sqrt(N) grid, by using a divide and conquer strategy."
//
// Sweeps the grid side, measures executed steps (in-memory) and virtual-
// layer exfiltration latency, and fits both against sqrt(N): the fit must be
// linear (r^2 ~ 1) with the predicted coefficients.
#include <cstdio>
#include <vector>

#include "analysis/analytical.h"
#include "analysis/table.h"
#include "app/dnc.h"
#include "app/field.h"
#include "app/topographic.h"
#include "bench/bench_common.h"
#include "core/virtual_network.h"
#include "sim/trace.h"

int main(int argc, char** argv) {
  using namespace wsn;
  bench::JsonWriter json(bench::json_path_from_args(argc, argv));
  bench::print_header(
      "E4 / Sec 4.1", "O(sqrt(N)) step complexity of the quad-tree algorithm",
      "steps grow linearly in sqrt(N) = grid side; latency = sense + "
      "(2m-2) + log2(m) under unit costs");

  analysis::Table table({"side m", "N", "levels", "steps", "latency(meas)",
                         "latency(pred)", "steps/m"});
  std::vector<double> sides;
  std::vector<double> steps;
  std::vector<double> latencies;
  for (std::size_t side : {2u, 4u, 8u, 16u, 32u, 64u}) {
    const app::FeatureGrid grid = app::checkerboard_grid(side);
    app::DncStats stats;
    app::dnc_summary(grid, &stats);

    sim::Simulator sim(1);
    core::VirtualNetwork vnet(sim, core::GridTopology(side),
                              core::uniform_cost_model());
    const auto outcome = app::run_topographic_query(vnet, grid);
    const auto predicted =
        analysis::predict_quadtree(side, core::uniform_cost_model());

    sides.push_back(static_cast<double>(side));
    steps.push_back(static_cast<double>(stats.steps));
    latencies.push_back(outcome.round.finished_at);
    table.row({analysis::Table::num(side), analysis::Table::num(side * side),
               analysis::Table::num(stats.levels),
               analysis::Table::num(stats.steps),
               analysis::Table::num(outcome.round.finished_at, 1),
               analysis::Table::num(predicted.latency, 1),
               analysis::Table::num(static_cast<double>(stats.steps) /
                                        static_cast<double>(side),
                                    3)});
    json.row("step_complexity",
             {{"side", static_cast<std::uint64_t>(side)},
              {"levels", static_cast<std::uint64_t>(stats.levels)},
              {"steps", static_cast<std::uint64_t>(stats.steps)},
              {"latency", outcome.round.finished_at},
              {"latency_pred", predicted.latency}});
  }
  std::printf("%s\n", table.str().c_str());

  const sim::LinearFit steps_fit = sim::fit_line(sides, steps);
  const sim::LinearFit lat_fit = sim::fit_line(sides, latencies);
  std::printf("steps   vs sqrt(N): slope %.3f, intercept %.3f, r^2 %.6f\n",
              steps_fit.slope, steps_fit.intercept, steps_fit.r2);
  std::printf("latency vs sqrt(N): slope %.3f, intercept %.3f, r^2 %.6f\n",
              lat_fit.slope, lat_fit.intercept, lat_fit.r2);
  json.row("step_complexity_fit", {{"steps_slope", steps_fit.slope},
                                   {"steps_r2", steps_fit.r2},
                                   {"latency_slope", lat_fit.slope},
                                   {"latency_r2", lat_fit.r2}});
  std::printf(
      "\nCheck: both fits are linear in m = sqrt(N) with r^2 ~ 1 (steps\n"
      "slope ~1, latency slope ~2), confirming the O(sqrt N) claim; the\n"
      "log2(m) merge term only perturbs the intercept.\n");
  return 0;
}
