// E8 (Section 5.2): leader binding converges to the unique node closest to
// the geographic cell center; broadcasts flood the minimum delta within each
// cell and are suppressed at boundaries.
//
// Sweeps nodes-per-cell, reporting broadcasts per node, convergence time,
// uniqueness, and agreement with the centrally computed oracle winner.
#include <cstdio>

#include "analysis/table.h"
#include "bench/bench_common.h"

int main(int argc, char** argv) {
  using namespace wsn;
  bench::print_header(
      "E8 / Sec 5.2", "Binding virtual processes to physical nodes",
      "eventually the only node with ldr=true is the one closest to the "
      "cell center; residual-energy metric supported for rotation");
  bench::JsonWriter json(bench::json_path_from_args(argc, argv));

  analysis::Table table({"grid", "node/cell", "bcast/node", "converged@",
                         "unique", "oracle match", "mean d(leader,center)"});
  for (std::size_t grid_side : {4u, 8u}) {
    for (std::size_t per_cell : {4u, 8u, 16u, 32u}) {
      const std::size_t nodes = grid_side * grid_side * per_cell;
      const std::uint64_t seed = 500 + grid_side * 100 + per_cell;

      // Fresh stack but we re-run the binding on a clean simulator clock by
      // constructing the stack (binding runs inside) and reading results.
      bench::PhysicalStack stack(grid_side, nodes, 1.4, seed);
      if (!stack.healthy()) continue;
      const auto& binding = stack.binding_result;
      const auto oracle = emulation::oracle_leaders(
          *stack.mapper, emulation::BindingMetric::kDistanceToCenter,
          *stack.ledger);
      const bool match = binding.leaders == oracle;

      sim::Summary center_dist;
      core::GridTopology grid(grid_side);
      for (const core::GridCoord& cell : grid.all_coords()) {
        const net::NodeId leader = binding.leader_of(cell, grid_side);
        if (leader != net::kNoNode) {
          center_dist.add(stack.mapper->distance_to_center(leader));
        }
      }

      table.row(
          {analysis::Table::num(grid_side) + "x" + analysis::Table::num(grid_side),
           analysis::Table::num(per_cell),
           analysis::Table::num(static_cast<double>(binding.broadcasts) /
                                    static_cast<double>(nodes),
                                2),
           analysis::Table::num(binding.converged_at - stack.emulation_result
                                                           .converged_at,
                                1),
           binding.unique_leaders ? "yes" : "NO",
           match ? "yes" : "NO",
           analysis::Table::num(center_dist.mean(), 3)});
      json.row("leader_binding",
               {{"grid_side", static_cast<std::uint64_t>(grid_side)},
                {"per_cell", static_cast<std::uint64_t>(per_cell)},
                {"broadcasts", binding.broadcasts},
                {"converged_at",
                 binding.converged_at - stack.emulation_result.converged_at},
                {"unique", static_cast<std::uint64_t>(
                               binding.unique_leaders ? 1 : 0)},
                {"oracle_match", static_cast<std::uint64_t>(match ? 1 : 0)},
                {"mean_center_dist", center_dist.mean()}});
    }
  }
  std::printf("%s\n", table.str().c_str());
  std::printf(
      "Check: every cell elects exactly one leader; the winner equals the\n"
      "centrally computed closest-to-center node in every configuration;\n"
      "broadcasts per node stay bounded as density grows (each node\n"
      "re-broadcasts only when it hears a strictly smaller delta). The\n"
      "cell-side-normalized distance to center shrinks as density rises -\n"
      "denser cells align network and problem geometry better.\n");
  return 0;
}
