// E2 (Figure 3): the example mapping of the quad-tree onto the 4x4 grid.
//
// Regenerates the grid labeling of Figure 3, verifies the coverage and
// spatial-correlation constraints, and reports where each interior task
// lands (root at location 0; level-1 tasks at 0, 4, 8, 12).
#include <cstdio>

#include "analysis/table.h"
#include "bench/bench_common.h"
#include "synthesis/synthesizer.h"
#include "taskgraph/mapping.h"

int main(int argc, char** argv) {
  using namespace wsn;
  bench::JsonWriter json(bench::json_path_from_args(argc, argv));
  bench::print_header(
      "E2 / Figure 3", "Example mapping onto the 4x4 grid",
      "terrain partitioned into 2x2 blocks; sibling leaves share a block; "
      "interior tasks on NW-corner group leaders");

  std::printf("Grid cell labels (Morton indices), as drawn in Figure 3:\n%s\n",
              taskgraph::render_figure3(4).c_str());

  const taskgraph::QuadTree tree = taskgraph::build_quad_tree(4);
  core::GridTopology grid(4);
  core::GroupHierarchy groups(grid);
  const auto mapping = taskgraph::paper_mapping(tree, groups);

  analysis::Table table({"task", "kind", "level", "figure label", "mapped to"});
  for (const auto& task : tree.graph.tasks()) {
    std::ostringstream coord;
    coord << mapping[task.id];
    table.row({analysis::Table::num(task.id),
               task.children.empty() ? "sense" : "merge",
               analysis::Table::num(task.level),
               analysis::Table::num(tree.figure_label(task.id)), coord.str()});
  }
  std::printf("%s\n", table.str().c_str());

  const auto coverage = taskgraph::check_coverage(tree.graph, mapping, grid);
  const auto spatial =
      taskgraph::check_spatial_correlation(tree.graph, mapping, grid);
  std::printf("coverage violations: %zu\nspatial-correlation violations: %zu\n",
              coverage.size(), spatial.size());
  json.row("fig3_mapping",
           {{"tasks", static_cast<std::uint64_t>(tree.graph.tasks().size())},
            {"coverage_violations", static_cast<std::uint64_t>(coverage.size())},
            {"spatial_violations", static_cast<std::uint64_t>(spatial.size())},
            {"root_row", static_cast<std::int64_t>(mapping[tree.graph.root()].row)},
            {"root_col", static_cast<std::int64_t>(mapping[tree.graph.root()].col)}});

  const auto report = synthesis::synthesize(tree, mapping, groups);
  std::printf("\n%s\n", report.describe().c_str());

  std::printf(
      "Check: root mapped to (0,0) [location 0]; level-1 tasks to (0,0),\n"
      "(0,2), (2,0), (2,2) [locations 0, 4, 8, 12]; both constraints hold;\n"
      "synthesis selects the group-communication middleware.\n");
  return 0;
}
