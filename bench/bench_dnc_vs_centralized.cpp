// E5 (Section 2 design flow): "the end user could decide if a divide and
// conquer approach is better than a centralized approach if, say, total
// latency of one round of the application is to be minimized."
//
// Runs both algorithms on the virtual architecture across grid sizes and
// reports total energy, latency, hottest-node energy, and energy balance -
// the decision data the methodology says the virtual architecture provides.
#include <cstdio>

#include "analysis/analytical.h"
#include "analysis/metrics.h"
#include "analysis/table.h"
#include "app/centralized.h"
#include "app/field.h"
#include "app/topographic.h"
#include "bench/bench_common.h"
#include "core/virtual_network.h"

int main(int argc, char** argv) {
  using namespace wsn;
  bench::print_header(
      "E5 / Sec 2", "Divide-and-conquer vs centralized collection",
      "in-network merging wins on total energy at scale; the crossover and "
      "hot-spot behavior come from the cost model");
  bench::JsonWriter json(bench::json_path_from_args(argc, argv));

  analysis::Table table({"side", "N", "algo", "energy", "latency", "max node E",
                         "balance(cv)", "msgs"});
  for (std::size_t side : {4u, 8u, 16u, 32u}) {
    sim::Rng field_rng(side);
    const app::FeatureGrid grid = app::threshold_sample(
        app::value_noise_field(side * 13), side, 0.55);

    {
      sim::Simulator sim(1);
      core::VirtualNetwork vnet(sim, core::GridTopology(side),
                                core::uniform_cost_model());
      const auto outcome = app::run_topographic_query(vnet, grid);
      const auto e = analysis::energy_report(vnet.ledger());
      table.row({analysis::Table::num(side), analysis::Table::num(side * side),
                 "quad-tree", analysis::Table::num(e.total, 0),
                 analysis::Table::num(outcome.round.finished_at, 1),
                 analysis::Table::num(e.max, 1), analysis::Table::num(e.cv, 2),
                 analysis::Table::num(outcome.round.messages_sent)});
      json.row("dnc_vs_centralized",
               {{"side", static_cast<std::uint64_t>(side)},
                {"algo", "quad-tree"},
                {"energy", e.total},
                {"latency", outcome.round.finished_at},
                {"max_node_energy", e.max},
                {"cv", e.cv},
                {"messages",
                 static_cast<std::uint64_t>(outcome.round.messages_sent)}});
    }
    {
      sim::Simulator sim(2);
      core::VirtualNetwork vnet(sim, core::GridTopology(side),
                                core::uniform_cost_model());
      const auto outcome = app::run_centralized_query(vnet, grid);
      const auto e = analysis::energy_report(vnet.ledger());
      table.row({analysis::Table::num(side), analysis::Table::num(side * side),
                 "centralized", analysis::Table::num(e.total, 0),
                 analysis::Table::num(outcome.finished_at, 1),
                 analysis::Table::num(e.max, 1), analysis::Table::num(e.cv, 2),
                 analysis::Table::num(outcome.messages)});
      json.row("dnc_vs_centralized",
               {{"side", static_cast<std::uint64_t>(side)},
                {"algo", "centralized"},
                {"energy", e.total},
                {"latency", outcome.finished_at},
                {"max_node_energy", e.max},
                {"cv", e.cv},
                {"messages", static_cast<std::uint64_t>(outcome.messages)}});
    }
  }
  std::printf("%s\n", table.str().c_str());

  // Analytical crossover: communication energy of D&C is ~4m^2 vs the
  // centralized 2m^3; the ratio grows linearly with m.
  analysis::Table ratio({"side", "pred D&C energy", "pred central energy",
                         "ratio central/D&C"});
  for (std::size_t side : {4u, 8u, 16u, 32u, 64u, 128u}) {
    const auto d = analysis::predict_quadtree(side, core::uniform_cost_model());
    const auto c =
        analysis::predict_centralized(side, core::uniform_cost_model());
    ratio.row({analysis::Table::num(side),
               analysis::Table::num(d.total_energy, 0),
               analysis::Table::num(c.total_energy, 0),
               analysis::Table::num(c.total_energy / d.total_energy, 2)});
  }
  std::printf("%s\n", ratio.str().c_str());
  std::printf(
      "Check: quad-tree total energy grows ~N while centralized grows\n"
      "~N^1.5, so the ratio grows ~sqrt(N); the centralized sink is the\n"
      "hottest node by a wide margin (poor energy balance), matching the\n"
      "paper's motivation for in-network processing. Centralized latency\n"
      "is dominated by the sink's whole-grid labeling under the uniform\n"
      "cost model.\n");
  return 0;
}
