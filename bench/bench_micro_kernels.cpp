// Google-benchmark micro kernels: throughput of the computational primitives
// the experiments lean on (reference labeling, boundary merges, the full
// divide-and-conquer pass, Morton indexing, emulation-protocol setup), plus
// the tracing-overhead proof (disabled tracing must cost nothing on the
// send hot path).
#include <benchmark/benchmark.h>

#include "app/boundary.h"
#include "app/dnc.h"
#include "app/field.h"
#include "app/labeling.h"
#include "app/topographic.h"
#include "core/virtual_network.h"
#include "bench/bench_common.h"
#include "core/grid_topology.h"
#include "obs/export.h"
#include "obs/profiler.h"
#include "obs/sinks.h"
#include "obs/trace.h"

namespace {

using namespace wsn;

void BM_ReferenceLabeling(benchmark::State& state) {
  const auto side = static_cast<std::size_t>(state.range(0));
  sim::Rng rng(1);
  const app::FeatureGrid grid = app::random_grid(side, 0.5, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(app::label_regions(grid));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(side * side));
}
BENCHMARK(BM_ReferenceLabeling)->Arg(16)->Arg(64)->Arg(256);

void BM_DivideAndConquerLabeling(benchmark::State& state) {
  const auto side = static_cast<std::size_t>(state.range(0));
  sim::Rng rng(2);
  const app::FeatureGrid grid = app::random_grid(side, 0.5, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(app::dnc_label(grid));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(side * side));
}
BENCHMARK(BM_DivideAndConquerLabeling)->Arg(16)->Arg(64)->Arg(256);

void BM_BoundaryMerge(benchmark::State& state) {
  const auto side = static_cast<std::uint32_t>(state.range(0));
  sim::Rng rng(3);
  const app::FeatureGrid grid = app::random_grid(side, 0.5, rng);
  const auto half = static_cast<std::int32_t>(side / 2);
  const app::BlockSummary left =
      app::BlockSummary::of_rect(grid, 0, 0, side / 2, side);
  const app::BlockSummary right =
      app::BlockSummary::of_rect(grid, 0, half, side / 2, side);
  for (auto _ : state) {
    benchmark::DoNotOptimize(app::merge(left, right));
  }
}
BENCHMARK(BM_BoundaryMerge)->Arg(16)->Arg(64)->Arg(256);

void BM_MortonRoundTrip(benchmark::State& state) {
  std::uint64_t k = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::morton_index(core::morton_coord(k)));
    k = (k + 1) & 0xffffff;
  }
}
BENCHMARK(BM_MortonRoundTrip);

void BM_VirtualRoundTopographic(benchmark::State& state) {
  const auto side = static_cast<std::size_t>(state.range(0));
  sim::Rng rng(4);
  const app::FeatureGrid grid = app::random_grid(side, 0.5, rng);
  for (auto _ : state) {
    sim::Simulator sim(1);
    core::VirtualNetwork vnet(sim, core::GridTopology(side),
                              core::uniform_cost_model());
    benchmark::DoNotOptimize(app::run_topographic_query(vnet, grid));
  }
}
BENCHMARK(BM_VirtualRoundTopographic)->Arg(8)->Arg(16)->Arg(32);

void BM_EmulationSetup(benchmark::State& state) {
  const auto grid_side = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    bench::PhysicalStack stack(grid_side, grid_side * grid_side * 10, 1.3, 7);
    benchmark::DoNotOptimize(stack.emulation_result.broadcasts);
  }
}
BENCHMARK(BM_EmulationSetup)->Arg(2)->Arg(4)->Arg(8);

// Tracing-overhead proof for the ISSUE-1 acceptance criterion: the virtual
// send hot path with tracing disabled must be indistinguishable from the
// pre-obs baseline, i.e. BM_VirtualSendTracingOff ~= what this kernel
// measured before the obs layer existed, and the assertion below proves the
// disabled path emitted nothing. BM_VirtualSendNullSink bounds the cost of
// the fully-armed path for comparison.
void send_kernel(benchmark::State& state) {
  sim::Simulator sim(1);
  core::VirtualNetwork vnet(sim, core::GridTopology(16),
                            core::uniform_cost_model());
  const core::GridCoord a{0, 0};
  const core::GridCoord b{15, 15};
  for (auto _ : state) {
    vnet.send(a, b, 0.0, 1.0);
    sim.run();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

void BM_VirtualSendTracingOff(benchmark::State& state) {
  // Sink installed but every category masked: the guard must early-out
  // before building any event. The canary asserts it did.
  obs::RingBufferSink canary(16);
  obs::ScopedTrace guard(canary, /*mask=*/0);
  send_kernel(state);
  if (canary.size() != 0 || canary.dropped() != 0) {
    state.SkipWithError("disabled tracing emitted events on the hot path");
  }
}
BENCHMARK(BM_VirtualSendTracingOff);

void BM_VirtualSendNullSink(benchmark::State& state) {
  obs::NullSink sink;
  obs::ScopedTrace guard(sink, obs::kAllCategories);
  send_kernel(state);
  if (sink.accepted() == 0) {
    state.SkipWithError("armed tracing emitted nothing; guard is broken");
  }
}
BENCHMARK(BM_VirtualSendNullSink);

// Profiler-overhead proof (same shape as the tracing canary above): with
// the profiler disarmed, the dispatch hot path pays one call + one branch
// per ProfSpan, and the canary asserts nothing was recorded. Compare against
// BM_DispatchProfilerArmed for the armed cost (two clock reads + bucket
// arithmetic per span).
void dispatch_kernel(benchmark::State& state) {
  sim::Simulator sim(1);
  for (auto _ : state) {
    for (int i = 0; i < 64; ++i) {
      sim.schedule_in(static_cast<double>(i % 7), [] {});
    }
    sim.run();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 64);
}

void BM_DispatchProfilerOff(benchmark::State& state) {
  obs::SimProfiler& prof = obs::profiler();
  prof.arm();
  prof.disarm();  // leave it provably disarmed with clean buckets
  dispatch_kernel(state);
  if (prof.bucket(obs::ProfCat::kDispatch).count != 0) {
    state.SkipWithError("disarmed profiler recorded spans on the hot path");
  }
}
BENCHMARK(BM_DispatchProfilerOff);

void BM_DispatchProfilerArmed(benchmark::State& state) {
  obs::SimProfiler& prof = obs::profiler();
  prof.arm();
  dispatch_kernel(state);
  const bool empty = prof.bucket(obs::ProfCat::kDispatch).count == 0;
  prof.disarm();
  if (empty) {
    state.SkipWithError("armed profiler recorded nothing; guard is broken");
  }
}
BENCHMARK(BM_DispatchProfilerArmed);

// Export-allocation canary for the streaming capture path: append_jsonl
// into a warmed buffer must not allocate — that is what makes
// StreamingFileSink's per-event cost flat (bench_trace E23 measures the
// end-to-end pipeline; this pins the serializer alone).
void BM_AppendJsonlReuse(benchmark::State& state) {
  obs::TraceEvent ev;
  ev.time = 1234.5;
  ev.node = 42;
  ev.category = obs::Category::kVirtual;
  ev.name = "send";
  ev.flow = 7;
  ev.attrs = {{"dst", std::int64_t{99}},
              {"size", 1.0},
              {"hops", std::uint64_t{3}}};
  std::string line;
  obs::append_jsonl(ev, line);  // warm the buffer past its final size
  std::uint64_t events = 0;
  const obs::AllocStats alloc0 = obs::global_alloc_stats();
  for (auto _ : state) {
    line.clear();
    obs::append_jsonl(ev, line);
    benchmark::DoNotOptimize(line.data());
    ++events;
  }
  const obs::AllocStats alloc1 = obs::global_alloc_stats();
  // The benchmark harness itself may allocate O(1) around the loop; a
  // serializer leak shows up as O(iterations).
  if (alloc1.count - alloc0.count >= events) {
    state.SkipWithError("append_jsonl allocated on the reuse path");
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(events));
  state.SetBytesProcessed(static_cast<std::int64_t>(events * line.size()));
}
BENCHMARK(BM_AppendJsonlReuse);

}  // namespace

BENCHMARK_MAIN();
