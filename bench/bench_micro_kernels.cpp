// Google-benchmark micro kernels: throughput of the computational primitives
// the experiments lean on (reference labeling, boundary merges, the full
// divide-and-conquer pass, Morton indexing, emulation-protocol setup).
#include <benchmark/benchmark.h>

#include "app/boundary.h"
#include "app/dnc.h"
#include "app/field.h"
#include "app/labeling.h"
#include "app/topographic.h"
#include "core/virtual_network.h"
#include "bench/bench_common.h"
#include "core/grid_topology.h"

namespace {

using namespace wsn;

void BM_ReferenceLabeling(benchmark::State& state) {
  const auto side = static_cast<std::size_t>(state.range(0));
  sim::Rng rng(1);
  const app::FeatureGrid grid = app::random_grid(side, 0.5, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(app::label_regions(grid));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(side * side));
}
BENCHMARK(BM_ReferenceLabeling)->Arg(16)->Arg(64)->Arg(256);

void BM_DivideAndConquerLabeling(benchmark::State& state) {
  const auto side = static_cast<std::size_t>(state.range(0));
  sim::Rng rng(2);
  const app::FeatureGrid grid = app::random_grid(side, 0.5, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(app::dnc_label(grid));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(side * side));
}
BENCHMARK(BM_DivideAndConquerLabeling)->Arg(16)->Arg(64)->Arg(256);

void BM_BoundaryMerge(benchmark::State& state) {
  const auto side = static_cast<std::uint32_t>(state.range(0));
  sim::Rng rng(3);
  const app::FeatureGrid grid = app::random_grid(side, 0.5, rng);
  const auto half = static_cast<std::int32_t>(side / 2);
  const app::BlockSummary left =
      app::BlockSummary::of_rect(grid, 0, 0, side / 2, side);
  const app::BlockSummary right =
      app::BlockSummary::of_rect(grid, 0, half, side / 2, side);
  for (auto _ : state) {
    benchmark::DoNotOptimize(app::merge(left, right));
  }
}
BENCHMARK(BM_BoundaryMerge)->Arg(16)->Arg(64)->Arg(256);

void BM_MortonRoundTrip(benchmark::State& state) {
  std::uint64_t k = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::morton_index(core::morton_coord(k)));
    k = (k + 1) & 0xffffff;
  }
}
BENCHMARK(BM_MortonRoundTrip);

void BM_VirtualRoundTopographic(benchmark::State& state) {
  const auto side = static_cast<std::size_t>(state.range(0));
  sim::Rng rng(4);
  const app::FeatureGrid grid = app::random_grid(side, 0.5, rng);
  for (auto _ : state) {
    sim::Simulator sim(1);
    core::VirtualNetwork vnet(sim, core::GridTopology(side),
                              core::uniform_cost_model());
    benchmark::DoNotOptimize(app::run_topographic_query(vnet, grid));
  }
}
BENCHMARK(BM_VirtualRoundTopographic)->Arg(8)->Arg(16)->Arg(32);

void BM_EmulationSetup(benchmark::State& state) {
  const auto grid_side = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    bench::PhysicalStack stack(grid_side, grid_side * grid_side * 10, 1.3, 7);
    benchmark::DoNotOptimize(stack.emulation_result.broadcasts);
  }
}
BENCHMARK(BM_EmulationSetup)->Arg(2)->Arg(4)->Arg(8);

}  // namespace

BENCHMARK_MAIN();
