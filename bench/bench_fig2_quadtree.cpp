// E1 (Figure 2): the quad-tree representation of the algorithm.
//
// Regenerates the figure's level structure and labels for the 4x4 case and
// verifies the construction generalizes (sizes, arity, extents) for larger
// grids.
#include <cstdio>

#include "analysis/table.h"
#include "bench/bench_common.h"
#include "taskgraph/quadtree.h"

int main(int argc, char** argv) {
  using namespace wsn;
  bench::print_header(
      "E1 / Figure 2", "Quad-tree representation of the algorithm",
      "data flow graph structured as a quad-tree; leaves sample, interior "
      "nodes merge; labels 0..15 / 0,4,8,12 / 0");
  bench::JsonWriter json(bench::json_path_from_args(argc, argv));

  const taskgraph::QuadTree tree = taskgraph::build_quad_tree(4);
  std::printf("%s\n", render_figure2(tree).c_str());

  analysis::Table table({"grid side", "tasks", "leaves", "interior", "levels",
                         "arity"});
  for (std::size_t side : {2u, 4u, 8u, 16u, 32u, 64u}) {
    double wall_ms = 0.0;
    const taskgraph::QuadTree t = [&] {
      obs::ScopedTimer timer(&wall_ms);
      return taskgraph::build_quad_tree(side);
    }();
    std::size_t interior = 0;
    std::size_t arity = 0;
    for (const auto& task : t.graph.tasks()) {
      if (!task.children.empty()) {
        ++interior;
        arity = task.children.size();
      }
    }
    table.row({analysis::Table::num(side), analysis::Table::num(t.graph.size()),
               analysis::Table::num(t.graph.leaves().size()),
               analysis::Table::num(interior),
               analysis::Table::num(t.graph.height()),
               analysis::Table::num(arity)});
    json.row("fig2_quadtree",
             {{"side", static_cast<std::uint64_t>(side)},
              {"tasks", static_cast<std::uint64_t>(t.graph.size())},
              {"leaves", static_cast<std::uint64_t>(t.graph.leaves().size())},
              {"interior", static_cast<std::uint64_t>(interior)},
              {"levels", static_cast<std::uint64_t>(t.graph.height())},
              {"wall_ms", wall_ms}});
  }
  std::printf("%s\n", table.str().c_str());
  std::printf(
      "Check: every interior node has arity 4 and leaves = side^2; the tree\n"
      "of Figure 2 is the side=4 row.\n");
  return 0;
}
