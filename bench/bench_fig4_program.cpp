// E3 (Figure 4): the synthesized program specification.
//
// Prints the condition/action program, then executes it on the virtual grid
// for a sample field and shows that the reactive rules produce the correct
// labeling with the expected message/merge counts.
#include <cstdio>

#include "analysis/table.h"
#include "app/field.h"
#include "app/labeling.h"
#include "app/topographic.h"
#include "bench/bench_common.h"
#include "core/virtual_network.h"
#include "synthesis/program.h"

int main(int argc, char** argv) {
  using namespace wsn;
  bench::JsonWriter json(bench::json_path_from_args(argc, argv));
  bench::print_header(
      "E3 / Figure 4", "Synthesized program specification",
      "reactive condition/action program; asynchronous incremental merging; "
      "only the final aggregator exfiltrates");

  std::printf("%s\n", synthesis::render_figure4().c_str());

  const std::size_t side = 8;
  sim::Rng field_rng(2026);
  const app::FeatureGrid grid =
      app::threshold_sample(app::hotspot_field(3, field_rng), side, 0.5);
  std::printf("Sampled field (%zux%zu, '#'=feature):\n%s\n", side, side,
              grid.render().c_str());

  sim::Simulator sim(1);
  core::VirtualNetwork vnet(sim, core::GridTopology(side),
                            core::uniform_cost_model());
  const auto outcome = app::run_topographic_query(vnet, grid);
  const app::Labeling reference = app::label_regions(grid);

  analysis::Table table({"quantity", "value"});
  table.row({"regions found (program)", analysis::Table::num(outcome.regions.size())});
  table.row({"regions (reference CCL)", analysis::Table::num(reference.region_count())});
  table.row({"network messages", analysis::Table::num(outcome.round.messages_sent)});
  table.row({"self-merges at leaders", analysis::Table::num(outcome.round.self_merges)});
  table.row({"remote merges", analysis::Table::num(outcome.round.remote_merges)});
  table.row({"exfiltration time", analysis::Table::num(outcome.round.finished_at, 2)});
  std::ostringstream node;
  node << outcome.round.exfiltration_node;
  table.row({"exfiltration node", node.str()});
  std::printf("%s\n", table.str().c_str());
  json.row("fig4_program",
           {{"side", static_cast<std::uint64_t>(side)},
            {"regions", static_cast<std::uint64_t>(outcome.regions.size())},
            {"regions_reference",
             static_cast<std::uint64_t>(reference.region_count())},
            {"messages",
             static_cast<std::uint64_t>(outcome.round.messages_sent)},
            {"self_merges",
             static_cast<std::uint64_t>(outcome.round.self_merges)},
            {"remote_merges",
             static_cast<std::uint64_t>(outcome.round.remote_merges)},
            {"finished_at", outcome.round.finished_at}});

  std::printf(
      "Check: region counts agree; messages = side^2 - 1 = %zu; the node\n"
      "performing the final aggregation is (0,0), the level-maxrecLevel\n"
      "leader, exactly as the program text dictates.\n",
      side * side - 1);
  return 0;
}
