// E19 (robustness; Section 5 runtime hardening): the paper's emulation
// layer assumes the physical links deliver; real deployments drop packets.
// This bench quantifies what the ReliableChannel ARQ buys and what it
// costs: grid-wide deadline-bounded sums over the overlay, raw link vs
// ARQ, across packet-loss rates. Reported per cell: delivered fraction
// (contributors / expected), workload energy, mean round latency, and the
// ARQ's retransmit / give-up counts.
#include <cstdio>

#include "analysis/table.h"
#include "bench/bench_common.h"
#include "core/primitives.h"

namespace {

using namespace wsn;

constexpr std::size_t kSide = 8;
constexpr std::size_t kNodes = 200;
constexpr double kRange = 1.3;
constexpr int kRounds = 5;
constexpr double kDeadline = 250.0;

/// The bench needs a deployment where the fault-free overlay can route
/// every cell leader to the collector: some seeds place no node within
/// radio range across a cell boundary, which caps the delivered fraction
/// below 1 even at loss 0 and makes the "raw vs ARQ" comparison read as an
/// ARQ failure. Instead of hard-coding one lucky seed, walk the overlay's
/// own hop tables from every cell leader toward (0,0) and take the first
/// candidate whose chains all terminate at the collector; skipped seeds
/// are reported to stderr so a topology regression is visible, not silent.
/// Seed 1 is first so an unchanged routing layer keeps the committed
/// BENCH_BASELINE.json rows byte-identical.
std::uint64_t pick_routable_seed() {
  const core::GridCoord collector{0, 0};
  for (const std::uint64_t seed : {1ULL, 2ULL, 3ULL, 5ULL, 8ULL}) {
    bench::PhysicalStack stack(kSide, kNodes, kRange, seed);
    bool routable = stack.healthy();
    if (routable) {
      const net::NodeId sink = stack.overlay->bound_node(collector);
      for (const core::GridCoord& c : core::GridTopology(kSide).all_coords()) {
        net::NodeId at = stack.overlay->bound_node(c);
        // Leader-to-collector chains are at most a few hops per cell of
        // Manhattan distance; 4*side*side steps means a routing loop.
        std::size_t steps = 4 * kSide * kSide;
        while (at != sink && at != net::kNoNode && steps-- > 0) {
          at = stack.overlay->route_next_hop(at, collector);
        }
        if (at != sink) {
          routable = false;
          break;
        }
      }
    }
    if (routable) return seed;
    std::fprintf(stderr,
                 "bench_fault_recovery: seed %llu lacks a full set of "
                 "leader->collector routes, skipping\n",
                 static_cast<unsigned long long>(seed));
  }
  std::fprintf(stderr,
               "bench_fault_recovery: no routable seed among candidates\n");
  std::exit(1);
}

std::uint64_t routable_seed() {
  static const std::uint64_t seed = pick_routable_seed();
  return seed;
}

struct RunResult {
  double delivered_fraction;  // mean contributors/expected over rounds
  double energy;              // ledger total beyond setup
  double latency;             // mean round duration
  std::uint64_t retransmits;
  std::uint64_t give_ups;
};

RunResult run(double loss, bool arq) {
  bench::PhysicalStack stack(kSide, kNodes, kRange, routable_seed());
  if (!stack.healthy()) {
    std::fprintf(stderr, "stack unhealthy at seed %llu\n",
                 static_cast<unsigned long long>(routable_seed()));
    std::exit(1);
  }
  if (arq) stack.enable_arq();
  stack.link->set_loss_probability(loss);

  std::vector<core::GridCoord> members;
  std::vector<double> values;
  for (const core::GridCoord& c : core::GridTopology(kSide).all_coords()) {
    members.push_back(c);
    values.push_back(1.0);
  }
  const core::GridCoord leader{0, 0};

  const double energy0 = stack.ledger->total();
  double fraction_sum = 0.0;
  double latency_sum = 0.0;
  for (int r = 0; r < kRounds; ++r) {
    const sim::Time start = stack.sim.now();
    core::PartialResult result;
    core::group_reduce_deadline(*stack.overlay, members, leader, values,
                                core::ReduceOp::kSum, 1.0, kDeadline,
                                [&](const core::PartialResult& pr) {
                                  result = pr;
                                });
    stack.sim.run();
    fraction_sum += static_cast<double>(result.contributors.size()) /
                    static_cast<double>(result.expected.size());
    latency_sum += result.finished - start;
  }

  RunResult out;
  out.delivered_fraction = fraction_sum / kRounds;
  out.energy = stack.ledger->total() - energy0;
  out.latency = latency_sum / kRounds;
  out.retransmits = arq ? stack.arq->counters().get("arq.retransmit") : 0;
  out.give_ups = arq ? stack.arq->counters().get("arq.give_up") : 0;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bench::print_header(
      "E19 / robustness", "ARQ cost and benefit under packet loss",
      "per-hop ack/retransmit recovers grid-wide collectives that raw "
      "links lose; the overhead is bounded ack traffic");
  bench::JsonWriter json(bench::json_path_from_args(argc, argv));

  analysis::Table table({"loss", "mode", "delivered", "energy", "latency",
                         "retransmits", "give_ups"});
  for (double loss : {0.0, 0.01, 0.05, 0.2}) {
    for (bool arq : {false, true}) {
      const RunResult r = run(loss, arq);
      const char* mode = arq ? "arq" : "raw";
      table.row({analysis::Table::num(loss, 2), mode,
                 analysis::Table::num(r.delivered_fraction, 3),
                 analysis::Table::num(r.energy, 1),
                 analysis::Table::num(r.latency, 1),
                 analysis::Table::num(r.retransmits),
                 analysis::Table::num(r.give_ups)});
      json.row("fault_recovery",
               {{"loss", loss},
                {"mode", mode},
                {"delivered_fraction", r.delivered_fraction},
                {"energy", r.energy},
                {"latency", r.latency},
                {"retransmits", r.retransmits},
                {"give_ups", r.give_ups}});
    }
  }
  std::printf("%s\n", table.str().c_str());
  std::printf(
      "Check: at loss 0 the modes tie except for ack energy; as loss grows\n"
      "the raw overlay's delivered fraction collapses (one drop kills a\n"
      "whole member-to-leader path) while ARQ holds near 1.0, paying for it\n"
      "in retransmissions and ack airtime. Give-ups stay rare until loss\n"
      "approaches the retry budget's breaking point.\n");
  return 0;
}
