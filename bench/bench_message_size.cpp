// E14 (ablation; Sections 3.1 & 4.1): the boundary representation exists so
// that "maximum data compression can be achieved" when merging spatially
// correlated extents. This bench measures actual encoded message sizes up
// the quad-tree and re-runs the round with exact (codec-driven) message
// sizes instead of the fixed-unit assumption.
#include <cstdio>

#include "analysis/table.h"
#include "app/field.h"
#include "app/serialize.h"
#include "app/topographic.h"
#include "bench/bench_common.h"
#include "core/virtual_network.h"
#include "sim/trace.h"

int main(int argc, char** argv) {
  using namespace wsn;
  bench::JsonWriter json(bench::json_path_from_args(argc, argv));
  bench::print_header(
      "E14 / ablation", "Boundary-summary compression and exact message sizes",
      "summary bytes track the block perimeter, not its area; raw-status "
      "shipping grows with area");

  // Part 1: encoded size vs block side for different field families.
  const std::size_t side = 64;
  struct Family {
    const char* name;
    app::FeatureGrid grid;
  };
  sim::Rng rng(5);
  std::vector<Family> families;
  families.push_back({"solid", app::full_grid(side)});
  families.push_back({"blobs", app::threshold_sample(
                                   app::value_noise_field(11), side, 0.55)});
  families.push_back({"random p=.5", app::random_grid(side, 0.5, rng)});

  analysis::Table table({"field", "block", "bytes", "bytes/cell",
                         "raw bytes (1b/cell)", "compression x"});
  for (const Family& family : families) {
    for (std::uint32_t block : {4u, 8u, 16u, 32u, 64u}) {
      const app::BlockSummary s =
          app::BlockSummary::of_rect(family.grid, 0, 0, block, block);
      const double bytes = static_cast<double>(app::encoded_size(s));
      const double raw = static_cast<double>(block * block) / 8.0;
      table.row({family.name,
                 analysis::Table::num(block) + "x" + analysis::Table::num(block),
                 analysis::Table::num(bytes, 0),
                 analysis::Table::num(bytes / (block * block), 3),
                 analysis::Table::num(raw, 0),
                 analysis::Table::num(raw / bytes, 2)});
      json.row("message_size", {{"field", family.name},
                                {"block", static_cast<std::uint64_t>(block)},
                                {"bytes", bytes},
                                {"raw_bytes", raw},
                                {"compression", raw / bytes}});
    }
  }
  std::printf("%s\n", table.str().c_str());

  // Part 2: rerun the topographic round with exact sizes; compare energy
  // and latency against the fixed-unit assumption.
  analysis::Table run_table({"sizes", "field", "latency", "comm energy",
                             "max msg units"});
  for (const Family& family : families) {
    for (bool exact : {false, true}) {
      sim::Simulator sim(1);
      core::VirtualNetwork vnet(sim, core::GridTopology(side),
                                core::uniform_cost_model());
      app::TopographicConfig config;
      auto regions = std::make_shared<std::vector<app::RegionInfo>>();
      auto hooks = app::topographic_hooks(family.grid, config, regions.get());
      auto max_units = std::make_shared<double>(0.0);
      if (exact) {
        hooks.payload_units = [max_units](const std::any& p) {
          const double u = app::ExactSizeModel{}.units(
              std::any_cast<const app::BlockSummary&>(p));
          *max_units = std::max(*max_units, u);
          return u;
        };
      } else {
        *max_units = 1.0;
      }
      synthesis::AggregationProgram prog(vnet, hooks);
      prog.start_round();
      sim.run();
      const auto& ledger = vnet.ledger();
      run_table.row(
          {exact ? "exact codec" : "fixed 1 unit", family.name,
           analysis::Table::num(prog.stats().finished_at, 1),
           analysis::Table::num(ledger.total(net::EnergyUse::kTx) +
                                    ledger.total(net::EnergyUse::kRx),
                                0),
           analysis::Table::num(*max_units, 2)});
      json.row("message_size_run",
               {{"sizes", exact ? "exact" : "fixed"},
                {"field", family.name},
                {"latency", prog.stats().finished_at},
                {"comm_energy", ledger.total(net::EnergyUse::kTx) +
                                    ledger.total(net::EnergyUse::kRx)},
                {"max_msg_units", *max_units}});
    }
  }
  std::printf("%s\n", run_table.str().c_str());
  std::printf(
      "Check: bytes per cell fall as blocks grow (perimeter scaling) for\n"
      "coherent fields, while the worst case (random p=.5) stays near the\n"
      "raw encoding - compression is exactly the dividend of spatial\n"
      "correlation. With exact sizes the round costs more than the\n"
      "fixed-unit analysis for fragmented fields and about the same for\n"
      "coherent ones, bounding the idealization error of the cost model.\n");
  return 0;
}
