// E16 (Section 3.1): "Processing and responding to queries could be in most
// cases decoupled from the actual data gathering and boundary estimation
// process ... a query to count the number of regions of interest can obtain
// and sum the local counts of each of the distributed storage nodes."
//
// Compares answering K count queries by (a) re-running the full gathering
// round each time vs (b) gathering once and summing the distributed stored
// counts per query.
#include <cstdio>

#include "analysis/table.h"
#include "app/field.h"
#include "app/storage.h"
#include "bench/bench_common.h"
#include "core/virtual_network.h"

int main(int argc, char** argv) {
  using namespace wsn;
  bench::JsonWriter json(bench::json_path_from_args(argc, argv));
  bench::print_header(
      "E16 / Sec 3.1", "Decoupled query processing over distributed storage",
      "count queries sum stored local counts instead of re-estimating "
      "boundaries");

  analysis::Table table({"side", "regions", "storage nodes", "gather E",
                         "query E", "requery E", "query/requery",
                         "query latency", "requery latency"});
  for (std::size_t side : {8u, 16u, 32u}) {
    // A fragmented field: many small regions close at low levels, so the
    // stored counts spread across the leader hierarchy.
    sim::Rng rng(side);
    const app::FeatureGrid grid = app::random_grid(side, 0.3, rng);

    sim::Simulator sim(1);
    core::VirtualNetwork vnet(sim, core::GridTopology(side),
                              core::uniform_cost_model());
    const app::RegionStore store = app::run_and_store(vnet, grid);
    const double gather_energy = vnet.ledger().total();
    const double gather_latency = store.gather_round.finished_at;

    std::size_t storage_nodes = 0;
    for (double v : store.closed_here) storage_nodes += v != 0.0 ? 1 : 0;

    const double t0 = sim.now();
    const auto result = app::count_regions_query(vnet, store);
    const double query_energy = vnet.ledger().total() - gather_energy;
    const double query_latency = result.finished - t0;

    if (result.value != static_cast<double>(store.total_regions)) {
      std::printf("COUNT MISMATCH at side %zu!\n", side);
      return 1;
    }

    table.row({analysis::Table::num(side),
               analysis::Table::num(store.total_regions),
               analysis::Table::num(storage_nodes),
               analysis::Table::num(gather_energy, 0),
               analysis::Table::num(query_energy, 0),
               analysis::Table::num(gather_energy, 0),
               analysis::Table::num(query_energy / gather_energy, 3),
               analysis::Table::num(query_latency, 1),
               analysis::Table::num(gather_latency, 1)});
    json.row("stored_queries",
             {{"side", static_cast<std::uint64_t>(side)},
              {"regions", static_cast<std::uint64_t>(store.total_regions)},
              {"storage_nodes", static_cast<std::uint64_t>(storage_nodes)},
              {"gather_energy", gather_energy},
              {"query_energy", query_energy},
              {"query_latency", query_latency},
              {"gather_latency", gather_latency}});
  }
  std::printf("%s\n", table.str().c_str());
  std::printf(
      "Check: a stored-count query touches only the storage nodes (merging\n"
      "leaders that closed at least one region) with single-unit scalar\n"
      "messages, costing a small fraction of re-running the gathering\n"
      "round - the decoupling Section 3.1 argues for. The answer matches\n"
      "the root's ground truth exactly at every size.\n");
  return 0;
}
