// E25 (robustness; self-healing membership): with cell beliefs and leader
// rosters live protocol state, campaigns mix membership-targeted
// corruption strikes (defected beliefs, scrambled rosters) with vacancy
// scenarios — a whole cell crashes around one surviving follower, which
// must orphan, be adopted by the nearest reachable neighboring cell, and
// leave its vacated cell re-bound to a live proxy leader. This bench
// sweeps strike severity against deployment topology (grid, ring, mesh)
// and reports, per cell of the sweep, adoptions committed, proxy
// re-binds, the worst vacancy-to-adoption latency, the worst
// corruption-to-quiet latency, and trace-event cost. Every campaign runs
// the full chaos oracle including check_membership (zero dark cells,
// inverse-consistent beliefs and rosters at settle); `failed` must be 0
// in every row for the other columns to mean anything.
#include <cstdio>

#include "analysis/table.h"
#include "bench/bench_common.h"
#include "sim/chaos_soak.h"

namespace {

using namespace wsn;

constexpr std::size_t kCampaigns = 2;
constexpr std::uint64_t kSeed = 20260808;

struct RunResult {
  std::size_t failed = 0;
  std::size_t corruptions = 0;
  std::size_t adoptions = 0;
  std::size_t binds = 0;  // vacated cells re-bound to a proxy leader
  std::uint64_t events = 0;
  double max_adoption = 0.0;    // worst vacancy-to-adoption latency
  double max_reconverge = 0.0;  // worst corruption-to-quiet latency
  double bound = 0.0;           // analytic stabilization bound (membership)
};

RunResult run(net::TopologyKind topo, std::size_t severity) {
  sim::ChaosSoakConfig cfg;
  cfg.topology = topo;
  cfg.membership = true;
  cfg.membership_events = severity;
  cfg.campaigns = kCampaigns;
  cfg.seed = kSeed;
  const sim::ChaosSoak soak(cfg);

  RunResult out{};
  // Membership mode adds the roster-repair term: one extra audit round on
  // top of the corruption-mode bound (see stabilization_bound()).
  out.bound = 2.5 * cfg.detector.lease_duration +
              1.5 * cfg.detector.election_timeout +
              2.0 * cfg.membership_audit_period + 10.0;
  for (std::size_t k = 0; k < cfg.campaigns; ++k) {
    const sim::ChaosCampaignResult res = soak.run_campaign(k);
    if (!res.ok()) ++out.failed;
    out.corruptions += res.corruptions;
    out.adoptions += res.adoptions;
    out.binds += res.adopt_binds;
    out.events += res.events;
    out.max_adoption = std::max(out.max_adoption, res.max_adoption_latency);
    out.max_reconverge =
        std::max(out.max_reconverge, res.max_reconverge_latency);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bench::print_header(
      "E25 / robustness",
      "self-healing membership: adoption and proxy re-binding vs topology",
      "after membership corruption and whole-cell vacancies the deployment "
      "heals itself — orphans are adopted, vacated cells re-bound to proxy "
      "leaders, and beliefs/rosters reconcile within the extended bound");
  bench::JsonWriter json(bench::json_path_from_args(argc, argv));

  const net::TopologyKind topologies[] = {net::TopologyKind::kGrid,
                                          net::TopologyKind::kRing,
                                          net::TopologyKind::kMesh};
  const std::size_t severities[] = {1, 4};
  analysis::Table table({"topology", "severity", "corruptions", "adoptions",
                         "binds", "adopt_lat", "reconverge", "bound", "events",
                         "failed"});
  for (const net::TopologyKind topo : topologies) {
    for (const std::size_t severity : severities) {
      const RunResult r = run(topo, severity);
      table.row({net::to_string(topo), analysis::Table::num(severity),
                 analysis::Table::num(r.corruptions),
                 analysis::Table::num(r.adoptions),
                 analysis::Table::num(r.binds),
                 analysis::Table::num(r.max_adoption, 2),
                 analysis::Table::num(r.max_reconverge, 2),
                 analysis::Table::num(r.bound, 1),
                 analysis::Table::num(r.events),
                 analysis::Table::num(r.failed)});
      json.row("membership",
               {{"topology", std::string(net::to_string(topo))},
                {"severity", static_cast<std::uint64_t>(severity)},
                {"corruptions", static_cast<std::uint64_t>(r.corruptions)},
                {"adoptions", static_cast<std::uint64_t>(r.adoptions)},
                {"binds", static_cast<std::uint64_t>(r.binds)},
                {"adopt_lat", r.max_adoption},
                {"reconverge", r.max_reconverge},
                {"bound", r.bound},
                {"events", r.events},
                {"failed", static_cast<std::uint64_t>(r.failed)}});
    }
  }
  std::printf("%s\n", table.str().c_str());
  std::printf(
      "Check: failed is 0 in every row (each campaign passed the full chaos\n"
      "oracle including check_membership: zero dark cells, beliefs and\n"
      "rosters inverse-consistent at settle); every adoption and reconverge\n"
      "latency sits under the extended bound; higher severity costs more\n"
      "events but never coverage or convergence.\n");
  return 0;
}
