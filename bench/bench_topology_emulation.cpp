// E7 (Section 5.1): topology emulation protocol efficiency claims:
//  (i)   path setup in all cells occurs in parallel,
//  (ii)  messages cross at most one cell boundary before being suppressed,
//  (iii) latency proportional to the maximum intra-cell path length.
//
// Sweeps node density and grid size; reports broadcasts per node,
// suppressed fraction, convergence time, and the max intra-cell shortest
// path it should track.
#include <algorithm>
#include <cstdio>

#include "analysis/table.h"
#include "bench/bench_common.h"

namespace {

/// Longest shortest-path (in hops) between any two nodes of the same cell,
/// maximized over cells - the quantity claim (iii) says drives latency.
double max_intra_cell_path(const wsn::bench::PhysicalStack& stack) {
  using namespace wsn;
  double worst = 0;
  core::GridTopology grid(stack.mapper->grid_side());
  for (const core::GridCoord& cell : grid.all_coords()) {
    const auto members = stack.mapper->members(cell);
    for (net::NodeId m : members) {
      const auto dist = stack.graph->hop_distances_within(m, members);
      for (net::NodeId other : members) {
        if (dist[other] != net::NetworkGraph::kUnreachable) {
          worst = std::max(worst, static_cast<double>(dist[other]));
        }
      }
    }
  }
  return worst;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace wsn;
  bench::print_header(
      "E7 / Sec 5.1", "Topology emulation protocol cost",
      "parallel per-cell path setup; <=1 boundary crossing per message; "
      "latency ~ max intra-cell path length");
  bench::JsonWriter json(bench::json_path_from_args(argc, argv));

  analysis::Table table({"grid", "nodes", "node/cell", "bcast/node",
                         "suppressed%", "converged@", "max cell path",
                         "t/path"});
  for (std::size_t grid_side : {2u, 4u, 8u}) {
    for (std::size_t per_cell : {6u, 12u, 24u}) {
      const std::size_t nodes = grid_side * grid_side * per_cell;
      double wall_ms = 0.0;
      const auto stack_ptr = [&] {
        obs::ScopedTimer timer(&wall_ms);
        return std::make_unique<bench::PhysicalStack>(
            grid_side, nodes, 1.3, 1000 + grid_side * 10 + per_cell);
      }();
      const auto& stack = *stack_ptr;
      if (!stack.healthy()) continue;
      const auto& r = stack.emulation_result;
      const double path = max_intra_cell_path(stack);
      json.row("topology_emulation",
               {{"grid_side", static_cast<std::uint64_t>(grid_side)},
                {"nodes", static_cast<std::uint64_t>(nodes)},
                {"broadcasts", r.broadcasts},
                {"suppressed", r.suppressed},
                {"deliveries", r.deliveries},
                {"converged_at", r.converged_at},
                {"max_cell_path", path},
                {"wall_ms", wall_ms}});
      table.row(
          {analysis::Table::num(grid_side) + "x" + analysis::Table::num(grid_side),
           analysis::Table::num(nodes),
           analysis::Table::num(per_cell),
           analysis::Table::num(static_cast<double>(r.broadcasts) /
                                    static_cast<double>(nodes),
                                2),
           analysis::Table::num(100.0 * static_cast<double>(r.suppressed) /
                                    static_cast<double>(r.deliveries),
                                1),
           analysis::Table::num(r.converged_at, 1),
           analysis::Table::num(path, 0),
           analysis::Table::num(r.converged_at / std::max(path, 1.0), 2)});
    }
  }
  std::printf("%s\n", table.str().c_str());
  std::printf(
      "Check (i): broadcasts per node stay O(1) as the number of cells\n"
      "grows with fixed density - setup is parallel across cells, not\n"
      "sequential. Check (ii): the suppressed fraction accounts for every\n"
      "foreign-cell reception; no table information propagates further\n"
      "(asserted by the protocol's audit and the routing-chain tests).\n"
      "Check (iii): convergence time divided by the max intra-cell path\n"
      "length (t/path) is a small constant across configurations.\n");
  return 0;
}
